#include "cloud/spot.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace reshape::cloud {
namespace {

SpotMarket market(std::uint64_t seed = 21) {
  return SpotMarket(Rng(seed).split("spot"), SpotMarketModel{});
}

TEST(SpotMarket, PricePathIsDeterministic) {
  const SpotMarket a = market();
  const SpotMarket b = market();
  for (std::uint64_t h = 0; h < 100; ++h) {
    EXPECT_DOUBLE_EQ(a.price_at_hour(h).amount(), b.price_at_hour(h).amount());
  }
}

TEST(SpotMarket, QueryOrderDoesNotChangeHistory) {
  const SpotMarket a = market();
  const SpotMarket b = market();
  const double late_first = a.price_at_hour(50).amount();
  (void)b.price_at_hour(10);
  EXPECT_DOUBLE_EQ(b.price_at_hour(50).amount(), late_first);
}

TEST(SpotMarket, PricesStayWithinBounds) {
  const SpotMarket m = market();
  const SpotMarketModel& model = m.model();
  for (std::uint64_t h = 0; h < 1000; ++h) {
    const Dollars p = m.price_at_hour(h);
    EXPECT_GE(p, model.floor);
    EXPECT_LE(p, model.cap);
  }
}

TEST(SpotMarket, MeanReversionKeepsLongRunAverageNearMean) {
  const SpotMarket m = market();
  RunningStats prices;
  for (std::uint64_t h = 0; h < 2000; ++h) {
    prices.add(m.price_at_hour(h).amount());
  }
  EXPECT_NEAR(prices.mean(), m.model().mean.amount(), 0.01);
}

TEST(SpotMarket, PriceAtMapsSecondsToHours) {
  const SpotMarket m = market();
  EXPECT_DOUBLE_EQ(m.price_at(Seconds(10.0)).amount(),
                   m.price_at_hour(0).amount());
  EXPECT_DOUBLE_EQ(m.price_at(Seconds(3600.0)).amount(),
                   m.price_at_hour(1).amount());
  EXPECT_THROW((void)m.price_at(Seconds(-1.0)), Error);
}

TEST(SpotBid, HighBidHoldsContinuously) {
  const SpotMarket m = market();
  const auto spans = spans_running(m, m.model().cap, 24_h);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_DOUBLE_EQ(spans[0].start.value(), 0.0);
  EXPECT_DOUBLE_EQ(spans[0].end.value(), 24.0 * 3600.0);
}

TEST(SpotBid, BelowFloorNeverRuns) {
  const SpotMarket m = market();
  const auto spans =
      spans_running(m, Dollars(m.model().floor.amount() / 2.0), 24_h);
  EXPECT_TRUE(spans.empty());
  const SpotOutcome out =
      simulate_bid(m, Dollars(m.model().floor.amount() / 2.0), 24_h);
  EXPECT_DOUBLE_EQ(out.compute.value(), 0.0);
  EXPECT_DOUBLE_EQ(out.cost.amount(), 0.0);
}

TEST(SpotBid, MidBidGetsInterrupted) {
  const SpotMarket m = market();
  // A bid at the long-run mean should hold some hours and lose others
  // over a long horizon.
  const SpotOutcome out = simulate_bid(m, m.model().mean, Seconds(500 * 3600.0));
  EXPECT_GT(out.compute.value(), 0.0);
  EXPECT_LT(out.compute.value(), 500 * 3600.0);
  EXPECT_GT(out.interruptions, 0u);
}

TEST(SpotBid, CostIsMarketPriceNotBid) {
  const SpotMarket m = market();
  const SpotOutcome out = simulate_bid(m, m.model().cap, 10_h);
  double expected = 0.0;
  for (std::uint64_t h = 0; h < 10; ++h) {
    expected += m.price_at_hour(h).amount();
  }
  EXPECT_NEAR(out.cost.amount(), expected, 1e-9);
  // Paying spot beats on-demand when bidding sanely: 10 on-demand hours
  // would cost 10 * 0.085.
  EXPECT_LT(out.cost.amount(), 10 * 0.085);
}

TEST(SpotBid, PartialHourHorizonClipsLastSpan) {
  const SpotMarket m = market();
  const auto spans = spans_running(m, m.model().cap, Seconds(5400.0));
  ASSERT_FALSE(spans.empty());
  EXPECT_DOUBLE_EQ(spans.back().end.value(), 5400.0);
}

TEST(SpotModel, InvalidBoundsThrow) {
  SpotMarketModel bad;
  bad.floor = Dollars(0.5);
  bad.cap = Dollars(0.1);
  EXPECT_THROW(SpotMarket(Rng(1), bad), Error);
}

}  // namespace
}  // namespace reshape::cloud
