#include "cloud/billing.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace reshape::cloud {
namespace {

constexpr InstanceId kA{1};
constexpr InstanceId kB{2};

TEST(BillingMeter, UnknownInstanceIsFree) {
  const BillingMeter m;
  EXPECT_DOUBLE_EQ(m.cost(kA, 1_h).amount(), 0.0);
  EXPECT_DOUBLE_EQ(m.running_time(kA, 1_h).value(), 0.0);
}

TEST(BillingMeter, PartialHourBillsFullHour) {
  // §1.1: flat rate per hour *or partial hour*.
  BillingMeter m;
  m.on_running(kA, InstanceType::kSmall, Seconds(0.0));
  m.on_stopped(kA, Seconds(60.0));  // one minute
  EXPECT_DOUBLE_EQ(m.cost(kA, 1_h).amount(), 0.085);
}

TEST(BillingMeter, ExactHourBillsOneHour) {
  BillingMeter m;
  m.on_running(kA, InstanceType::kSmall, Seconds(0.0));
  m.on_stopped(kA, Seconds(3600.0));
  EXPECT_DOUBLE_EQ(m.cost(kA, 2_h).amount(), 0.085);
}

TEST(BillingMeter, JustOverAnHourBillsTwo) {
  BillingMeter m;
  m.on_running(kA, InstanceType::kSmall, Seconds(0.0));
  m.on_stopped(kA, Seconds(3601.0));
  EXPECT_NEAR(m.cost(kA, 2_h).amount(), 0.170, 1e-12);
}

TEST(BillingMeter, OpenIntervalChargedToNow) {
  BillingMeter m;
  m.on_running(kA, InstanceType::kSmall, Seconds(100.0));
  EXPECT_DOUBLE_EQ(m.running_time(kA, Seconds(1900.0)).value(), 1800.0);
  EXPECT_DOUBLE_EQ(m.cost(kA, Seconds(1900.0)).amount(), 0.085);
  EXPECT_NEAR(m.cost(kA, Seconds(100.0 + 7200.0)).amount(), 0.170, 1e-12);
}

TEST(BillingMeter, RestartStartsANewHourClock) {
  // Two separate 30-minute runs cost two hours, not one: each launch is
  // billed at hour granularity independently.
  BillingMeter m;
  m.on_running(kA, InstanceType::kSmall, Seconds(0.0));
  m.on_stopped(kA, Seconds(1800.0));
  m.on_running(kA, InstanceType::kSmall, Seconds(10000.0));
  m.on_stopped(kA, Seconds(11800.0));
  EXPECT_NEAR(m.cost(kA, Seconds(20000.0)).amount(), 0.170, 1e-12);
  EXPECT_DOUBLE_EQ(m.running_time(kA, Seconds(20000.0)).value(), 3600.0);
}

TEST(BillingMeter, PendingTimeIsFree) {
  // Payment is due only in the running state: an instance that never
  // reaches running never bills.
  BillingMeter m;
  EXPECT_DOUBLE_EQ(m.total_cost(10_h).amount(), 0.0);
}

TEST(BillingMeter, TotalsAcrossFleet) {
  BillingMeter m;
  m.on_running(kA, InstanceType::kSmall, Seconds(0.0));
  m.on_stopped(kA, Seconds(1800.0));
  m.on_running(kB, InstanceType::kSmall, Seconds(0.0));
  m.on_stopped(kB, Seconds(5400.0));  // 1.5 h -> 2 billed hours
  EXPECT_DOUBLE_EQ(m.instance_hours(2_h), 3.0);
  EXPECT_NEAR(m.total_cost(2_h).amount(), 3 * 0.085, 1e-12);
  EXPECT_EQ(m.billed_instances(), 2u);
}

TEST(BillingMeter, LargerTypesBillTheirRate) {
  BillingMeter m;
  m.on_running(kA, InstanceType::kLarge, Seconds(0.0));
  m.on_stopped(kA, Seconds(100.0));
  EXPECT_DOUBLE_EQ(m.cost(kA, 1_h).amount(), 0.34);
}

TEST(BillingMeter, ProtocolViolationsThrow) {
  BillingMeter m;
  EXPECT_THROW(m.on_stopped(kA, Seconds(1.0)), Error);
  m.on_running(kA, InstanceType::kSmall, Seconds(0.0));
  EXPECT_THROW(m.on_running(kA, InstanceType::kSmall, Seconds(1.0)), Error);
}

TEST(BillingMeter, ZeroLengthRunIsFree) {
  BillingMeter m;
  m.on_running(kA, InstanceType::kSmall, Seconds(5.0));
  m.on_stopped(kA, Seconds(5.0));
  EXPECT_DOUBLE_EQ(m.cost(kA, 1_h).amount(), 0.0);
}

}  // namespace
}  // namespace reshape::cloud
