// Fault-matrix tests for the data-plane retry engine: every injected
// transfer fault kind crossed with the policy knobs that react to it.
#include "cloud/transfer.hpp"

#include <gtest/gtest.h>

#include "cloud/ebs.hpp"
#include "cloud/s3.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace reshape::cloud {
namespace {

/// Fixed-cost channel: a clean attempt takes 10 s, a failed request 1 s.
TransferChannel fixed_channel() {
  return TransferChannel{[](Rng&) { return Seconds(10.0); },
                         [](Rng&) { return Seconds(1.0); }};
}

FaultInjector injector(FaultModel model, std::uint64_t seed = 11) {
  return FaultInjector(Rng(seed), model);
}

std::string keyed(const char* prefix, int k) {
  std::string key(prefix);
  key += std::to_string(k);
  return key;
}

TEST(TransferEngine, ZeroModelIsOneCleanAttempt) {
  const FaultInjector faults = injector(FaultModel{});
  Rng rng(1);
  const TransferOutcome out = transfer_with_retries(
      faults, "a", RetryPolicy{}, true, fixed_channel(), rng);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_DOUBLE_EQ(out.time.value(), 10.0);
  EXPECT_DOUBLE_EQ(out.backoff.value(), 0.0);
  EXPECT_DOUBLE_EQ(out.retry_overhead().value(), 0.0);
  EXPECT_EQ(out.error, TransferErrorKind::kNone);
}

TEST(TransferEngine, ZeroModelMakesNoRngDraws) {
  // The bit-identity contract: with no transfer faults configured the
  // engine must not consume the caller's rng stream beyond what the
  // channel itself draws (here: nothing).
  const FaultInjector faults = injector(FaultModel{});
  Rng rng(5);
  const std::uint64_t before = Rng(5).next_u64();
  (void)transfer_with_retries(faults, "x", RetryPolicy{}, true,
                              fixed_channel(), rng);
  EXPECT_EQ(rng.next_u64(), before);
}

TEST(TransferEngine, CertainTransientErrorBurnsTheExactBudget) {
  FaultModel model;
  model.p_transfer_error = 1.0;
  const FaultInjector faults = injector(model);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.jitter = 0.0;
  Rng rng(2);
  const TransferOutcome out =
      transfer_with_retries(faults, "k", policy, true, fixed_channel(), rng);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 3);
  EXPECT_EQ(out.transient_errors, 3);
  EXPECT_EQ(out.error, TransferErrorKind::kTransientError);
  // 3 failed requests (1 s each) + backoff(0) + backoff(1).
  EXPECT_DOUBLE_EQ(out.time.value(),
                   3.0 + policy.backoff(0).value() + policy.backoff(1).value());
}

TEST(TransferEngine, TransientErrorsRecoverWithinBudget) {
  FaultModel model;
  model.p_transfer_error = 0.4;
  const FaultInjector faults = injector(model);
  RetryPolicy policy;
  policy.max_attempts = 8;
  Rng rng(3);
  int recovered_with_retries = 0;
  for (int k = 0; k < 50; ++k) {
    const TransferOutcome out = transfer_with_retries(
        faults, keyed("obj-", k), policy, true, fixed_channel(),
        rng);
    ASSERT_TRUE(out.ok);
    if (out.attempts > 1) {
      ++recovered_with_retries;
      EXPECT_GT(out.retry_overhead().value(), 0.0);
    }
  }
  EXPECT_GT(recovered_with_retries, 5);  // p=0.4 must trip sometimes
}

TEST(TransferEngine, StallIsEnduredWithoutAWatchdog) {
  FaultModel model;
  model.p_transfer_stall = 1.0;
  model.transfer_stall_lo = 4.0;
  model.transfer_stall_hi = 4.0;  // deterministic factor
  const FaultInjector faults = injector(model);
  RetryPolicy policy;  // attempt_timeout = 0: endure
  Rng rng(4);
  const TransferOutcome out =
      transfer_with_retries(faults, "s", policy, true, fixed_channel(), rng);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_EQ(out.stalls, 1);
  EXPECT_DOUBLE_EQ(out.time.value(), 40.0);  // 10 s * factor 4
}

TEST(TransferEngine, WatchdogCutsTheStallAndRetries) {
  FaultModel model;
  model.p_transfer_stall = 1.0;
  model.transfer_stall_lo = 4.0;
  model.transfer_stall_hi = 4.0;
  const FaultInjector faults = injector(model);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.attempt_timeout = Seconds(15.0);  // < 40 s stalled read
  policy.jitter = 0.0;
  Rng rng(4);
  const TransferOutcome out =
      transfer_with_retries(faults, "s", policy, true, fixed_channel(), rng);
  EXPECT_FALSE(out.ok);  // every attempt stalls, every stall times out
  EXPECT_EQ(out.timeouts, 2);
  EXPECT_EQ(out.error, TransferErrorKind::kTimeout);
  // Two watchdog windows + one backoff.
  EXPECT_DOUBLE_EQ(out.time.value(), 30.0 + policy.backoff(0).value());
}

TEST(TransferEngine, CorruptionIsDetectedOnlyUnderVerification) {
  FaultModel model;
  model.p_transfer_corruption = 1.0;
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.jitter = 0.0;

  {
    const FaultInjector faults = injector(model);
    Rng rng(6);
    const TransferOutcome out =
        transfer_with_retries(faults, "c", policy, true, fixed_channel(), rng);
    EXPECT_FALSE(out.ok);  // both payloads corrupt, both detected
    EXPECT_EQ(out.corruptions_detected, 2);
    EXPECT_FALSE(out.delivered_corrupt);
    EXPECT_EQ(out.error, TransferErrorKind::kCorruption);
  }
  {
    // Without the digest check the first corrupt payload sails through.
    const FaultInjector faults = injector(model);
    Rng rng(6);
    const TransferOutcome out = transfer_with_retries(faults, "c", policy,
                                                      false, fixed_channel(),
                                                      rng);
    EXPECT_TRUE(out.ok);
    EXPECT_EQ(out.attempts, 1);
    EXPECT_TRUE(out.delivered_corrupt);
    EXPECT_EQ(out.corruptions_detected, 0);
  }
}

TEST(TransferEngine, SameSeedReplaysBitIdentically) {
  FaultModel model;
  model.p_transfer_error = 0.3;
  model.p_transfer_stall = 0.2;
  model.p_transfer_corruption = 0.1;
  RetryPolicy policy;
  policy.max_attempts = 6;

  auto run = [&] {
    const FaultInjector faults = injector(model, 123);
    Rng rng(9);
    std::vector<TransferOutcome> outs;
    for (int k = 0; k < 20; ++k) {
      outs.push_back(transfer_with_retries(faults, keyed("o", k),
                                           policy, true, fixed_channel(),
                                           rng));
    }
    return outs;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ok, b[i].ok);
    EXPECT_EQ(a[i].attempts, b[i].attempts);
    EXPECT_DOUBLE_EQ(a[i].time.value(), b[i].time.value());
    EXPECT_EQ(a[i].transient_errors, b[i].transient_errors);
    EXPECT_EQ(a[i].stalls, b[i].stalls);
    EXPECT_EQ(a[i].corruptions_detected, b[i].corruptions_detected);
  }
}

TEST(TransferEngine, DistinctKeysSeeIndependentFaultHistories) {
  FaultModel model;
  model.p_transfer_error = 0.5;
  const FaultInjector faults = injector(model);
  RetryPolicy policy;
  policy.max_attempts = 10;
  Rng rng(1);
  bool attempts_differ = false;
  int prev = -1;
  for (int k = 0; k < 30; ++k) {
    const TransferOutcome out = transfer_with_retries(
        faults, keyed("key-", k), policy, true, fixed_channel(),
        rng);
    if (prev >= 0 && out.attempts != prev) attempts_differ = true;
    prev = out.attempts;
  }
  EXPECT_TRUE(attempts_differ);
}

TEST(HedgedTransfer, DuplicateRescuesAFailedPrimary) {
  // Find a key whose primary stream exhausts its budget but whose #hedge
  // stream succeeds; the race must be saved by the duplicate.
  FaultModel model;
  model.p_transfer_error = 0.6;
  const FaultInjector faults = injector(model, 77);
  RetryPolicy policy;
  policy.max_attempts = 2;
  bool rescued = false;
  Rng rng(13);
  for (int k = 0; k < 200 && !rescued; ++k) {
    const std::string key = keyed("h", k);
    Rng probe(1);
    const TransferOutcome primary =
        transfer_with_retries(faults, key, policy, true, fixed_channel(),
                              probe);
    if (primary.ok) continue;
    const TransferOutcome hedged =
        hedged_transfer(faults, key, policy, true, fixed_channel(), rng);
    if (hedged.ok) {
      EXPECT_TRUE(hedged.hedge_won);
      rescued = true;
    }
  }
  EXPECT_TRUE(rescued);
}

TEST(HedgedTransfer, FailsOnlyWhenBothCopiesExhaust) {
  FaultModel model;
  model.p_transfer_error = 1.0;  // nothing can succeed
  const FaultInjector faults = injector(model);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.jitter = 0.0;
  Rng rng(3);
  const TransferOutcome out =
      hedged_transfer(faults, "doomed", policy, true, fixed_channel(), rng);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.attempts, 4);  // both copies burn their full budgets
}

TEST(HedgedTransfer, ZeroModelStillSucceedsOnce) {
  const FaultInjector faults = injector(FaultModel{});
  Rng rng(8);
  const TransferOutcome out = hedged_transfer(faults, "z", RetryPolicy{},
                                              true, fixed_channel(), rng);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 2);  // both copies ran one clean attempt
  EXPECT_DOUBLE_EQ(out.time.value(), 10.0);
}

TEST(ObjectStoreFaults, ZeroModelFetchResultMatchesFetchTime) {
  ObjectStore store;
  store.put("blob", 64_MB);
  const FaultInjector faults = injector(FaultModel{});
  Rng a(21), b(21);
  const Seconds historic = store.fetch_time("blob", a);
  const TransferOutcome out =
      store.fetch_result("blob", b, faults, RetryPolicy{});
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_DOUBLE_EQ(out.time.value(), historic.value());
}

TEST(ObjectStoreFaults, FetchRetriesUnderTransientErrors) {
  ObjectStore store;
  store.put("blob", 64_MB);
  FaultModel model;
  model.p_transfer_error = 0.5;
  const FaultInjector faults = injector(model, 3);
  RetryPolicy policy;
  policy.max_attempts = 12;
  Rng rng(4);
  int total_attempts = 0;
  for (int k = 0; k < 20; ++k) {
    store.put(keyed("o", k), 1_MB);
    const TransferOutcome out =
        store.fetch_result(keyed("o", k), rng, faults, policy);
    ASSERT_TRUE(out.ok);
    total_attempts += out.attempts;
  }
  EXPECT_GT(total_attempts, 20);  // some fetch needed a retry
}

TEST(ObjectStoreFaults, UploadUsesItsOwnFaultStream) {
  ObjectStore store;
  FaultModel model;
  model.p_transfer_error = 0.5;
  const FaultInjector faults = injector(model, 3);
  RetryPolicy policy;
  policy.max_attempts = 12;
  // A fetch of `k` and an upload to `k` must not share a fault history:
  // their first-attempt fates may differ for some key.
  bool differs = false;
  Rng rng(4);
  for (int k = 0; k < 40 && !differs; ++k) {
    const std::string key = keyed("k", k);
    store.put(key, 8_MB);
    const TransferOutcome down = store.fetch_result(key, rng, faults, policy);
    const TransferOutcome up =
        store.upload_result(key, 8_MB, rng, faults, policy);
    if (down.attempts != up.attempts) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(EbsFaults, ZeroModelReadMatchesEffectiveRate) {
  const EbsPlacementModel model;
  const EbsVolume vol(VolumeId{1}, 10_GB, AvailabilityZone{},
                      model, Rng(55));
  const FaultInjector faults = injector(FaultModel{});
  const Rate io = Rate::megabytes_per_second(100.0);
  Rng rng(2);
  const TransferOutcome out = vol.read_result(
      0_B, 1_GB, io, Seconds(0.0), rng, faults, RetryPolicy{});
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.attempts, 1);
  const Seconds expected = vol.effective_rate(0_B, 1_GB, io).time_for(1_GB);
  EXPECT_DOUBLE_EQ(out.time.value(), expected.value());
}

TEST(EbsFaults, SameExtentReplaysTheSameFaultHistory) {
  const EbsPlacementModel model;
  const EbsVolume vol(VolumeId{1}, 10_GB, AvailabilityZone{},
                      model, Rng(55));
  FaultModel fm;
  fm.p_transfer_error = 0.5;
  const FaultInjector faults = injector(fm, 9);
  const Rate io = Rate::megabytes_per_second(100.0);
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.jitter = 0.0;
  Rng a(1), b(1);
  const TransferOutcome first = vol.read_result(
      256_MB, 128_MB, io, Seconds(0.0), a, faults, policy);
  const TransferOutcome again = vol.read_result(
      256_MB, 128_MB, io, Seconds(0.0), b, faults, policy);
  EXPECT_EQ(first.attempts, again.attempts);
  EXPECT_DOUBLE_EQ(first.time.value(), again.time.value());
}

TEST(FaultModelValidation, RejectsBadTransferParameters) {
  {
    FaultModel model;
    model.p_transfer_error = 0.7;
    model.p_transfer_stall = 0.4;  // sum > 1
    EXPECT_THROW((void)FaultInjector(Rng(1), model), Error);
  }
  {
    FaultModel model;
    model.p_transfer_stall = 0.1;
    model.transfer_stall_lo = 0.5;  // would speed the transfer up
    EXPECT_THROW((void)FaultInjector(Rng(1), model), Error);
  }
  {
    FaultModel model;
    model.p_transfer_corruption = -0.1;
    EXPECT_THROW((void)FaultInjector(Rng(1), model), Error);
  }
}

}  // namespace
}  // namespace reshape::cloud
