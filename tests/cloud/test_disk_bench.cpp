#include "cloud/disk_bench.hpp"

#include <gtest/gtest.h>

namespace reshape::cloud {
namespace {

Instance instance_with(double io_mbps, double jitter) {
  InstanceQuality q;
  q.io_rate = Rate::megabytes_per_second(io_mbps);
  q.jitter = jitter;
  return Instance(InstanceId{1}, InstanceType::kSmall, AvailabilityZone{}, q,
                  Seconds(0.0));
}

TEST(DiskBench, ReportsRatesNearTrueQuality) {
  const Instance inst = instance_with(65.0, 0.0);
  Rng noise(1);
  const DiskBenchResult r = run_disk_bench(inst, noise);
  EXPECT_DOUBLE_EQ(r.block_read.mb_per_second(), 65.0);
  EXPECT_NEAR(r.block_write.mb_per_second(), 65.0 * 0.92, 1e-9);
  EXPECT_GT(r.elapsed.value(), 0.0);
}

TEST(DiskBench, PassesThresholdForFastInstances) {
  const Instance fast = instance_with(70.0, 0.0);
  const Instance slow = instance_with(40.0, 0.0);
  Rng noise(2);
  EXPECT_TRUE(
      run_disk_bench(fast, noise).passes(Rate::megabytes_per_second(60.0)));
  EXPECT_FALSE(
      run_disk_bench(slow, noise).passes(Rate::megabytes_per_second(60.0)));
}

TEST(DiskBench, WriteSlowerThanReadCanFailAlone) {
  // 64 MB/s reads but ~59 MB/s writes: the paper's >60 MB/s read/write
  // criterion must reject it.
  const Instance borderline = instance_with(64.0, 0.0);
  Rng noise(3);
  const DiskBenchResult r = run_disk_bench(borderline, noise);
  EXPECT_GE(r.block_read.mb_per_second(), 60.0);
  EXPECT_FALSE(r.passes(Rate::megabytes_per_second(60.0)));
}

TEST(DiskBench, StablePairDetectsConsistency) {
  const Instance steady = instance_with(65.0, 0.01);
  Rng noise(4);
  const DiskBenchResult a = run_disk_bench(steady, noise);
  const DiskBenchResult b = run_disk_bench(steady, noise);
  EXPECT_TRUE(stable_pair(a, b));
}

TEST(DiskBench, InconsistentInstanceEventuallyFailsStability) {
  const Instance wild = instance_with(65.0, 0.30);
  Rng noise(5);
  bool failed = false;
  for (int i = 0; i < 20 && !failed; ++i) {
    const DiskBenchResult a = run_disk_bench(wild, noise);
    const DiskBenchResult b = run_disk_bench(wild, noise);
    failed = !stable_pair(a, b);
  }
  EXPECT_TRUE(failed);
}

TEST(DiskBench, ElapsedScalesWithExtent) {
  const Instance inst = instance_with(65.0, 0.0);
  Rng noise(6);
  DiskBenchConfig small_cfg;
  small_cfg.test_extent = 100_MB;
  DiskBenchConfig big_cfg;
  big_cfg.test_extent = 1_GB;
  Rng noise2(6);
  const Seconds t_small = run_disk_bench(inst, noise, small_cfg).elapsed;
  const Seconds t_big = run_disk_bench(inst, noise2, big_cfg).elapsed;
  EXPECT_NEAR(t_big / t_small, 10.0, 0.2);
}

}  // namespace
}  // namespace reshape::cloud
