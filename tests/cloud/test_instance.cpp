#include "cloud/instance.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace reshape::cloud {
namespace {

Instance make_instance() {
  return Instance(InstanceId{1}, InstanceType::kSmall,
                  AvailabilityZone{Region::kUsEast, 0}, InstanceQuality{},
                  Seconds(0.0));
}

TEST(Instance, LifecycleHappyPath) {
  Instance i = make_instance();
  EXPECT_EQ(i.state(), InstanceState::kPending);
  EXPECT_FALSE(i.is_running());
  i.mark_running(Seconds(60.0));
  EXPECT_TRUE(i.is_running());
  ASSERT_TRUE(i.running_since().has_value());
  EXPECT_DOUBLE_EQ(i.running_since()->value(), 60.0);
  i.begin_shutdown(Seconds(100.0));
  EXPECT_EQ(i.state(), InstanceState::kShuttingDown);
  i.mark_terminated(Seconds(110.0));
  EXPECT_EQ(i.state(), InstanceState::kTerminated);
}

TEST(Instance, IllegalTransitionsThrow) {
  Instance i = make_instance();
  EXPECT_THROW(i.mark_terminated(Seconds(1.0)), Error);
  i.mark_running(Seconds(1.0));
  EXPECT_THROW(i.mark_running(Seconds(2.0)), Error);
  i.begin_shutdown(Seconds(3.0));
  EXPECT_THROW(i.begin_shutdown(Seconds(4.0)), Error);
  i.mark_terminated(Seconds(5.0));
  EXPECT_THROW(i.begin_shutdown(Seconds(6.0)), Error);
}

TEST(Instance, PendingCanBeShutDown) {
  Instance i = make_instance();
  i.begin_shutdown(Seconds(1.0));
  EXPECT_EQ(i.state(), InstanceState::kShuttingDown);
}

TEST(Instance, VolumeBookkeeping) {
  Instance i = make_instance();
  i.note_attached(VolumeId{10});
  i.note_attached(VolumeId{11});
  EXPECT_EQ(i.attached_volumes().size(), 2u);
  i.note_detached(VolumeId{10});
  ASSERT_EQ(i.attached_volumes().size(), 1u);
  EXPECT_EQ(i.attached_volumes()[0], VolumeId{11});
  EXPECT_THROW(i.note_detached(VolumeId{10}), Error);
}

TEST(Instance, LocalStorageCapacityEnforced) {
  Instance i = make_instance();
  i.stage_local(100_GB);
  EXPECT_EQ(i.local_used(), 100_GB);
  i.stage_local(60_GB);  // exactly the 160 GB ephemeral store
  EXPECT_THROW(i.stage_local(1_B), Error);
}

TEST(Instance, EphemeralStorageLostAtTermination) {
  // §1.1: instance-store contents are lost when the instance dies.
  Instance i = make_instance();
  i.stage_local(10_GB);
  i.mark_running(Seconds(1.0));
  i.begin_shutdown(Seconds(2.0));
  i.mark_terminated(Seconds(3.0));
  EXPECT_EQ(i.local_used(), 0_B);
}

TEST(Instance, FailedFromRunningRecordsTheCrash) {
  Instance i = make_instance();
  i.mark_running(Seconds(60.0));
  i.stage_local(Bytes(1000));
  i.mark_failed(Seconds(500.0), FailureKind::kCrash);
  EXPECT_EQ(i.state(), InstanceState::kFailed);
  EXPECT_TRUE(i.has_failed());
  ASSERT_TRUE(i.failure().has_value());
  EXPECT_EQ(i.failure()->kind, FailureKind::kCrash);
  EXPECT_DOUBLE_EQ(i.failure()->at.value(), 500.0);
  // Ephemeral storage is gone, exactly like termination.
  EXPECT_EQ(i.local_used(), Bytes(0));
}

TEST(Instance, FailedFromPendingIsABootFailure) {
  Instance i = make_instance();
  i.mark_failed(Seconds(30.0), FailureKind::kBootFailure);
  EXPECT_EQ(i.state(), InstanceState::kFailed);
  EXPECT_EQ(i.failure()->kind, FailureKind::kBootFailure);
  EXPECT_FALSE(i.running_since().has_value());
}

TEST(Instance, FailedIsTerminalAndDeadEndsRejected) {
  Instance i = make_instance();
  i.mark_running(Seconds(1.0));
  i.mark_failed(Seconds(2.0), FailureKind::kSpotInterruption);
  EXPECT_THROW(i.mark_running(Seconds(3.0)), Error);
  EXPECT_THROW(i.begin_shutdown(Seconds(3.0)), Error);
  EXPECT_THROW(i.mark_terminated(Seconds(3.0)), Error);
  EXPECT_THROW(i.mark_failed(Seconds(3.0), FailureKind::kCrash), Error);
}

TEST(Instance, InvalidIdRejected) {
  EXPECT_THROW(Instance(InstanceId{}, InstanceType::kSmall,
                        AvailabilityZone{}, InstanceQuality{}, Seconds(0.0)),
               Error);
}

}  // namespace
}  // namespace reshape::cloud
