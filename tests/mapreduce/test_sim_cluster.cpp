// Tests for the simulated MapReduce cluster scheduler.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mapreduce/sim_cluster.hpp"

namespace reshape::mr {
namespace {

std::vector<Split> uniform_splits(std::size_t count, Bytes each) {
  std::vector<Split> splits(count);
  for (std::size_t i = 0; i < count; ++i) {
    splits[i].file_indices.push_back(i);
    splits[i].total = each;
  }
  return splits;
}

SimClusterConfig reference_config(std::size_t workers = 8) {
  SimClusterConfig config;
  config.workers = workers;
  config.mixture = cloud::uniform_fast_mixture();
  return config;
}

TEST(SimCluster, SingleTaskSingleWorkerArithmetic) {
  SimClusterConfig config = reference_config(1);
  const SimCluster cluster(config, Rng(1));
  const auto splits = uniform_splits(1, 40_MB);
  const SimJobReport r = cluster.run(splits, 0_B);
  // 1.5 s overhead + 40 MB / 40 MB/s = 2.5 s.
  EXPECT_NEAR(r.map_makespan.value(), 2.5, 1e-9);
  EXPECT_NEAR(r.overhead_fraction, 1.5 / 2.5, 1e-9);
  EXPECT_DOUBLE_EQ(r.total.value(), r.map_makespan.value());
}

TEST(SimCluster, WorkSpreadsAcrossWorkers) {
  const SimCluster cluster(reference_config(8), Rng(2));
  const auto splits = uniform_splits(64, 40_MB);
  const SimJobReport r = cluster.run(splits, 0_B);
  // 64 tasks of 2.5 s over 8 workers: exactly 8 per worker.
  EXPECT_NEAR(r.map_makespan.value(), 8 * 2.5, 1e-9);
  for (const Seconds busy : r.worker_busy) {
    EXPECT_NEAR(busy.value(), 8 * 2.5, 1e-9);
  }
}

TEST(SimCluster, SmallFilesPayOverheadLargeSplitsDoNot) {
  const SimCluster cluster(reference_config(8), Rng(3));
  // Same bytes: 100k 4 kB splits vs 16 combined 25 MB splits.
  const auto small = uniform_splits(100'000, 4_kB);
  const auto large = uniform_splits(16, 25_MB);
  const SimJobReport r_small = cluster.run(small, 0_B);
  const SimJobReport r_large = cluster.run(large, 0_B);
  EXPECT_GT(r_small.overhead_fraction, 0.95);
  EXPECT_LT(r_large.overhead_fraction, 0.75);
  EXPECT_GT(r_small.map_makespan.value() / r_large.map_makespan.value(),
            100.0);
}

TEST(SimCluster, ShuffleAndReduceTailsScaleWithIntermediateVolume) {
  const SimCluster cluster(reference_config(4), Rng(4));
  const auto splits = uniform_splits(4, 10_MB);
  const SimJobReport none = cluster.run(splits, 0_B);
  const SimJobReport heavy = cluster.run(splits, 600_MB);
  EXPECT_DOUBLE_EQ(none.shuffle_time.value(), 0.0);
  EXPECT_NEAR(heavy.shuffle_time.value(), 6.0, 1e-9);   // 600MB / 100MB/s
  EXPECT_NEAR(heavy.reduce_time.value(), 10.0, 1e-9);   // 600MB / 60MB/s
  EXPECT_GT(heavy.total, none.total);
}

TEST(SimCluster, LptSchedulingBalancesSkewedSplits) {
  const SimCluster cluster(reference_config(4), Rng(5));
  // One huge split plus many small: LPT puts the huge one first, so the
  // makespan is close to max(huge, total/4).
  std::vector<Split> splits = uniform_splits(40, 10_MB);
  Split huge;
  huge.file_indices.push_back(999);
  huge.total = 400_MB;
  splits.push_back(huge);
  const SimJobReport r = cluster.run(splits, 0_B);
  const double huge_time = 1.5 + 400.0 / 40.0;            // 11.5 s
  const double small_work = 40.0 * (1.5 + 10.0 / 40.0);   // 70 s
  const double lower_bound =
      std::max(huge_time, (huge_time + small_work) / 4.0);
  EXPECT_LT(r.map_makespan.value(), lower_bound * 1.15);
  EXPECT_GE(r.map_makespan.value(), lower_bound - 1e-9);
}

TEST(SimCluster, HeterogeneousWorkersStretchMakespan) {
  SimClusterConfig slow_config = reference_config(8);
  slow_config.mixture = cloud::QualityMixture{};  // default heterogeneous
  slow_config.mixture.p_slow = 0.5;
  slow_config.mixture.p_fast = 0.5;
  const SimCluster uniform_cluster(reference_config(8), Rng(6));
  const SimCluster mixed_cluster(slow_config, Rng(6));
  const auto splits = uniform_splits(64, 40_MB);
  EXPECT_GT(mixed_cluster.run(splits, 0_B).map_makespan.value(),
            uniform_cluster.run(splits, 0_B).map_makespan.value());
}

TEST(SimCluster, DeterministicPerSeed) {
  const SimCluster a(reference_config(8), Rng(7));
  const SimCluster b(reference_config(8), Rng(7));
  const auto splits = uniform_splits(32, 20_MB);
  EXPECT_DOUBLE_EQ(a.run(splits, 1_MB).total.value(),
                   b.run(splits, 1_MB).total.value());
}

TEST(SimCluster, ZeroWorkersThrows) {
  SimClusterConfig config;
  config.workers = 0;
  EXPECT_THROW(SimCluster(config, Rng(8)), Error);
}

TEST(SimCluster, EmptySplitPlanIsInstant) {
  const SimCluster cluster(reference_config(2), Rng(9));
  const SimJobReport r = cluster.run({}, 0_B);
  EXPECT_DOUBLE_EQ(r.map_makespan.value(), 0.0);
  EXPECT_EQ(r.map_tasks, 0u);
}

TEST(SimCluster, DefaultConfigReportsNoFaultActivity) {
  const SimCluster cluster(reference_config(8), Rng(7));
  const SimJobReport r = cluster.run(uniform_splits(32, 20_MB), 1_MB);
  EXPECT_EQ(r.task_failures, 0u);
  EXPECT_EQ(r.speculative_tasks, 0u);
  EXPECT_DOUBLE_EQ(r.wasted_time.value(), 0.0);
}

TEST(SimCluster, TaskFailuresWasteTimeButTheJobStillFinishes) {
  SimClusterConfig config = reference_config(8);
  config.p_task_failure = 0.3;
  const SimCluster faulty(config, Rng(7));
  const SimCluster clean(reference_config(8), Rng(7));
  const auto splits = uniform_splits(64, 20_MB);

  const SimJobReport r = faulty.run(splits, 1_MB);
  ASSERT_GT(r.task_failures, 0u);
  EXPECT_GT(r.wasted_time.value(), 0.0);
  EXPECT_EQ(r.map_tasks, splits.size());
  // Re-executed attempts only ever add load.
  EXPECT_GE(r.map_makespan.value(),
            clean.run(splits, 1_MB).map_makespan.value());
}

TEST(SimCluster, TaskFailuresReplayUnderTheSameSeed) {
  SimClusterConfig config = reference_config(8);
  config.p_task_failure = 0.25;
  const SimCluster a(config, Rng(11));
  const SimCluster b(config, Rng(11));
  const auto splits = uniform_splits(48, 15_MB);
  const SimJobReport ra = a.run(splits, 1_MB);
  const SimJobReport rb = b.run(splits, 1_MB);
  EXPECT_EQ(ra.task_failures, rb.task_failures);
  EXPECT_DOUBLE_EQ(ra.wasted_time.value(), rb.wasted_time.value());
  EXPECT_DOUBLE_EQ(ra.total.value(), rb.total.value());
}

TEST(SimCluster, SpeculationRescuesStragglersOnAMixedCluster) {
  // A heterogeneous mixture puts some tasks on badly slow workers; with
  // speculation a backup copy on a fast worker caps the damage.
  SimClusterConfig config;
  config.workers = 8;
  config.mixture = cloud::QualityMixture{};  // heterogeneous: slow up to 4x
  const SimCluster plain(config, Rng(23));
  config.speculative_execution = true;
  config.speculative_slowdown = 1.5;
  const SimCluster speculating(config, Rng(23));
  const auto splits = uniform_splits(64, 40_MB);

  const SimJobReport without = plain.run(splits, 1_MB);
  const SimJobReport with = speculating.run(splits, 1_MB);
  ASSERT_GT(with.speculative_tasks, 0u)
      << "seed draws no slow workers; pick another seed";
  EXPECT_GT(with.wasted_time.value(), 0.0);
  EXPECT_LE(with.map_makespan.value(), without.map_makespan.value());
}

TEST(SimCluster, SpeculationNeverTriggersOnAUniformCluster) {
  SimClusterConfig config = reference_config(8);
  config.speculative_execution = true;
  const SimCluster cluster(config, Rng(7));
  const SimJobReport r = cluster.run(uniform_splits(32, 20_MB), 1_MB);
  // Every worker runs at the reference speed: nothing ever looks like a
  // straggler, so speculation stays idle.
  EXPECT_EQ(r.speculative_tasks, 0u);
  EXPECT_DOUBLE_EQ(r.wasted_time.value(), 0.0);
}

TEST(SimCluster, InvalidFaultConfigsThrow) {
  SimClusterConfig config = reference_config(4);
  config.p_task_failure = 1.0;
  EXPECT_THROW(SimCluster(config, Rng(1)), Error);
  config = reference_config(4);
  config.max_task_attempts = 0;
  EXPECT_THROW(SimCluster(config, Rng(1)), Error);
  config = reference_config(4);
  config.speculative_slowdown = 1.0;
  EXPECT_THROW(SimCluster(config, Rng(1)), Error);
}

}  // namespace
}  // namespace reshape::mr
