#include "mapreduce/job.hpp"
#include "mapreduce/jobs.hpp"

#include <gtest/gtest.h>

#include <map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/textgen.hpp"
#include "textproc/tokenizer.hpp"

namespace reshape::mr {
namespace {

std::vector<std::string> tiny_files() {
  return {"apple banana apple", "banana cherry", "apple", ""};
}

TEST(Splits, WholeFileOnePerFile) {
  const auto files = tiny_files();
  const auto splits = whole_file_splits(files);
  ASSERT_EQ(splits.size(), files.size());
  for (std::size_t i = 0; i < splits.size(); ++i) {
    ASSERT_EQ(splits[i].file_indices.size(), 1u);
    EXPECT_EQ(splits[i].file_indices[0], i);
    EXPECT_EQ(splits[i].total.count(), files[i].size());
  }
}

TEST(Splits, CombinedRespectsTargetAndCoversAll) {
  std::vector<std::string> files(100, std::string(1000, 'x'));
  const auto splits = combined_splits(files, 10_kB);
  EXPECT_EQ(splits.size(), 10u);
  std::size_t covered = 0;
  for (const Split& s : splits) {
    covered += s.file_indices.size();
    EXPECT_GE(s.total, 10_kB);
  }
  EXPECT_EQ(covered, files.size());
  EXPECT_THROW((void)combined_splits(files, 0_B), Error);
}

TEST(Splits, CombinedKeepsTailSplit) {
  std::vector<std::string> files(7, std::string(1000, 'x'));
  const auto splits = combined_splits(files, Bytes(3000));
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_EQ(splits.back().file_indices.size(), 1u);
}

TEST(WordCount, CountsAcrossFiles) {
  const auto files = tiny_files();
  const MapReduceJob job = word_count_job();
  const JobResult r = LocalRunner(2).run(job, files, whole_file_splits(files));
  std::map<std::string, std::uint64_t> counts;
  for (const KeyValue& kv : r.output) {
    counts[kv.key] = parse_count(kv.value);
  }
  EXPECT_EQ(counts["apple"], 3u);
  EXPECT_EQ(counts["banana"], 2u);
  EXPECT_EQ(counts["cherry"], 1u);
  EXPECT_EQ(counts.size(), 3u);
}

TEST(WordCount, OutputSortedByKey) {
  const auto files = tiny_files();
  const JobResult r =
      LocalRunner(1).run(word_count_job(), files, whole_file_splits(files));
  for (std::size_t i = 1; i < r.output.size(); ++i) {
    EXPECT_LT(r.output[i - 1].key, r.output[i].key);
  }
}

TEST(WordCount, SplitLayoutDoesNotChangeAnswer) {
  // The reshaping invariant: combining files must not change results.
  Rng rng(3);
  corpus::TextGenerator gen({}, rng);
  std::vector<std::string> files;
  for (int i = 0; i < 200; ++i) files.push_back(gen.text_of_size(2_kB));

  const MapReduceJob job = word_count_job();
  const JobResult per_file =
      LocalRunner(2).run(job, files, whole_file_splits(files));
  const JobResult combined =
      LocalRunner(2).run(job, files, combined_splits(files, 64_kB));
  ASSERT_EQ(per_file.output.size(), combined.output.size());
  for (std::size_t i = 0; i < per_file.output.size(); ++i) {
    EXPECT_EQ(per_file.output[i].key, combined.output[i].key);
    EXPECT_EQ(per_file.output[i].value, combined.output[i].value);
  }
}

TEST(WordCount, CombinerShrinksShuffle) {
  Rng rng(4);
  corpus::TextGenerator gen({}, rng);
  std::vector<std::string> files;
  for (int i = 0; i < 50; ++i) files.push_back(gen.text_of_size(4_kB));

  MapReduceJob with_combiner = word_count_job();
  MapReduceJob without = word_count_job();
  without.combiner = nullptr;
  const auto splits = combined_splits(files, 32_kB);
  const JobResult a = LocalRunner(2).run(with_combiner, files, splits);
  const JobResult b = LocalRunner(2).run(without, files, splits);
  EXPECT_LT(a.stats.intermediate_pairs, b.stats.intermediate_pairs / 2);
  // Same final answer.
  ASSERT_EQ(a.output.size(), b.output.size());
  for (std::size_t i = 0; i < a.output.size(); ++i) {
    EXPECT_EQ(a.output[i].value, b.output[i].value);
  }
}

TEST(WordCount, StatsAreConsistent) {
  const auto files = tiny_files();
  const auto splits = whole_file_splits(files);
  const JobResult r = LocalRunner(2).run(word_count_job(), files, splits);
  EXPECT_EQ(r.stats.map_tasks, splits.size());
  EXPECT_EQ(r.stats.input_records, files.size());
  EXPECT_EQ(r.stats.output_pairs, r.output.size());
  std::size_t bytes = 0;
  for (const auto& f : files) bytes += f.size();
  EXPECT_EQ(r.stats.input_bytes.count(), bytes);
  EXPECT_GE(r.stats.total_wall.value(), 0.0);
}

TEST(GrepJob, CountsMatchingLinesAcrossCorpus) {
  const std::vector<std::string> files{
      "the word here\nnot this line", "word again\nword twice", "nothing"};
  const MapReduceJob job = grep_job("word");
  const JobResult r = LocalRunner(1).run(job, files, whole_file_splits(files));
  ASSERT_EQ(r.output.size(), 1u);
  EXPECT_EQ(r.output[0].key, "word");
  EXPECT_EQ(parse_count(r.output[0].value), 3u);
}

TEST(GrepJob, NonsenseWordProducesEmptyOutput) {
  const auto files = tiny_files();
  const JobResult r = LocalRunner(1).run(grep_job("xyzzyplugh"), files,
                                         whole_file_splits(files));
  EXPECT_TRUE(r.output.empty());
}

TEST(Runner, ReducerCountControlsParallelPartitions) {
  const auto files = tiny_files();
  MapReduceJob job = word_count_job(8);
  const JobResult r =
      LocalRunner(4).run(job, files, whole_file_splits(files));
  EXPECT_EQ(r.stats.reduce_tasks, 8u);
  EXPECT_EQ(r.output.size(), 3u);  // partitioning must not lose keys
}

TEST(Runner, InvalidJobsThrow) {
  const auto files = tiny_files();
  MapReduceJob no_mapper;
  no_mapper.reducer = [](const auto&, const auto&, const Emit&) {};
  EXPECT_THROW(
      (void)LocalRunner(1).run(no_mapper, files, whole_file_splits(files)),
      Error);
  MapReduceJob zero_reducers = word_count_job();
  zero_reducers.num_reducers = 0;
  EXPECT_THROW((void)LocalRunner(1).run(zero_reducers, files,
                                        whole_file_splits(files)),
               Error);
}

TEST(Runner, SplitReferencingMissingFileThrows) {
  const auto files = tiny_files();
  Split bad;
  bad.file_indices.push_back(999);
  EXPECT_THROW((void)LocalRunner(1).run(word_count_job(), files, {bad}),
               Error);
}

TEST(ParseCount, RejectsGarbage) {
  EXPECT_EQ(parse_count("42"), 42u);
  EXPECT_THROW((void)parse_count("4x2"), Error);
  EXPECT_THROW((void)parse_count(""), Error);
}

}  // namespace
}  // namespace reshape::mr
