// Differential proof that the vectorized text kernels are bit-identical
// to their retained reference oracles — and, for the regex engine, to a
// third implementation (std::regex, ECMAScript grammar) on the shared
// pattern subset.  These are the equivalence gates behind the
// micro_textproc speedup claims: any behaviour drift fails here before it
// could show up as a "speedup".

#include <gtest/gtest.h>

// GCC's -Wmaybe-uninitialized fires falsely inside libstdc++'s <regex>
// NFA internals when instrumented by -fsanitize=address (std::function
// members of __detail::_State flagged at instantiation); suppress for
// this TU so the sanitizer sweep builds with -Werror.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <regex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "corpus/textgen.hpp"
#include "mapreduce/job.hpp"
#include "mapreduce/jobs.hpp"
#include "textproc/pos.hpp"
#include "textproc/scanner.hpp"
#include "textproc/tokenizer.hpp"

namespace reshape::textproc {
namespace {

// --------------------------------------------------------------- helpers

std::string lined_text(std::uint64_t seed, Bytes volume) {
  Rng rng(seed);
  corpus::TextGenerator gen({}, rng);
  std::string text = gen.text_of_size(volume);
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] == '.' && text[i + 1] == ' ') text[i + 1] = '\n';
  }
  return text;
}

/// Random pattern over the subset RegexLite and std::regex (ECMAScript)
/// interpret identically: literals, '.', letter/digit classes, repeats
/// and anchors.  No escapes and no negated classes — those have
/// grammar-specific corner cases and are covered by the targeted tests.
std::string random_pattern(Rng& rng) {
  std::string p;
  if (rng.bernoulli(0.2)) p += '^';
  const std::size_t atoms = 1 + rng.uniform_below(4);
  for (std::size_t a = 0; a < atoms; ++a) {
    switch (rng.uniform_below(4)) {
      case 0:
        p += static_cast<char>('a' + rng.uniform_below(4));  // a..d
        break;
      case 1:
        p += '.';
        break;
      case 2:
        p += "[a-d]";
        break;
      default:
        p += "[0-9]";
        break;
    }
    switch (rng.uniform_below(5)) {
      case 0: p += '*'; break;
      case 1: p += '+'; break;
      case 2: p += '?'; break;
      default: break;  // single
    }
  }
  if (rng.bernoulli(0.2)) p += '$';
  return p;
}

std::string random_subject(Rng& rng) {
  static constexpr char kAlphabet[] = "abcdabcd0123 .\n";
  const std::size_t len = rng.uniform_below(24);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s += kAlphabet[rng.uniform_below(sizeof(kAlphabet) - 1)];
  }
  return s;
}

// ---------------------------------------------------- regex differential

TEST(RegexDifferential, RandomPatternsAgreeWithReferenceAndStdRegex) {
  Rng rng(2026);
  std::size_t compiled = 0;
  for (int round = 0; round < 300; ++round) {
    const std::string pattern = random_pattern(rng);
    const RegexLite re(pattern);
    if (re.compiled()) ++compiled;
    const std::regex oracle(pattern, std::regex::ECMAScript);
    for (int subject = 0; subject < 20; ++subject) {
      const std::string text = random_subject(rng);
      const bool got = re.search(text);
      ASSERT_EQ(got, re.search_reference(text))
          << "DFA vs backtracker: /" << pattern << "/ on \"" << text << "\"";
      ASSERT_EQ(got, std::regex_search(text, oracle))
          << "RegexLite vs std::regex: /" << pattern << "/ on \"" << text
          << "\"";
    }
  }
  // The generator stays inside the DFA size limits, so every pattern must
  // take the table-driven path — otherwise the test is vacuous.
  EXPECT_EQ(compiled, 300u);
}

TEST(RegexDifferential, DictionaryPatternsOnGeneratedText) {
  const std::string text = lined_text(5, 64_kB);
  for (const std::string pattern :
       {"[a-z]+tion", "th[aeiou]", "qu.+", "[a-z]*ly", "^[A-Z]", "s$",
        "xyzzy[a-z]+", "c[aeiou]?t"}) {
    const RegexLite re(pattern);
    EXPECT_TRUE(re.compiled()) << pattern;
    const std::regex oracle(pattern, std::regex::ECMAScript);
    std::size_t pos = 0;
    while (pos <= text.size()) {
      std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) nl = text.size();
      const std::string line = text.substr(pos, nl - pos);
      const bool got = re.search(line);
      ASSERT_EQ(got, re.search_reference(line))
          << "/" << pattern << "/ on \"" << line << "\"";
      ASSERT_EQ(got, std::regex_search(line, oracle))
          << "/" << pattern << "/ on \"" << line << "\"";
      pos = nl + 1;
    }
  }
}

TEST(LiteralDifferential, FindAgreesWithReferenceAtEveryOffset) {
  const std::string text = lined_text(7, 16_kB);
  for (const std::string pattern :
       {"tion", "the", "a", "zz", "xyzzyplugh", " and ", "ing\nthe"}) {
    const LiteralSearcher s(pattern);
    std::size_t from = 0;
    for (int hops = 0; hops < 64 && from <= text.size(); ++hops) {
      const std::size_t got = s.find(text, from);
      ASSERT_EQ(got, s.find_reference(text, from))
          << pattern << " from " << from;
      if (got == LiteralSearcher::npos) break;
      from = got + 1;
    }
  }
}

// ----------------------------------------------------- grep golden counts

TEST(GrepDifferential, GoldenCountsOverThousandDocCorpus) {
  // 1000 generated documents; every document's vectorized counts must
  // equal the reference kernel's, and the corpus-wide totals are pinned
  // as golden values (the corpus is seeded, so a drift in either kernel
  // or in the generator breaks this loudly).
  Rng rng(40);
  corpus::TextGenerator gen({}, rng);
  std::vector<std::string> docs;
  docs.reserve(1000);
  for (int d = 0; d < 1000; ++d) {
    std::string doc = gen.text_of_size(Bytes(400));
    for (std::size_t i = 0; i + 1 < doc.size(); ++i) {
      if (doc[i] == '.' && doc[i + 1] == ' ') doc[i + 1] = '\n';
    }
    docs.push_back(std::move(doc));
  }

  std::size_t literal_matches = 0, literal_lines = 0;
  std::size_t regex_matches = 0;
  for (const std::string& doc : docs) {
    const GrepResult lit = grep_literal(doc, "the");
    const GrepResult lit_ref = grep_literal_reference(doc, "the");
    ASSERT_EQ(lit.matching_lines, lit_ref.matching_lines);
    ASSERT_EQ(lit.total_lines, lit_ref.total_lines);
    ASSERT_EQ(lit.bytes_scanned, lit_ref.bytes_scanned);
    literal_matches += lit.matching_lines;
    literal_lines += lit.total_lines;

    const GrepResult re = grep_regex(doc, "[a-z]+ed");
    const GrepResult re_ref = grep_regex_reference(doc, "[a-z]+ed");
    ASSERT_EQ(re.matching_lines, re_ref.matching_lines);
    ASSERT_EQ(re.total_lines, re_ref.total_lines);
    regex_matches += re.matching_lines;
  }
  EXPECT_EQ(literal_lines, 7723u);
  EXPECT_EQ(literal_matches, 1948u);
  EXPECT_EQ(regex_matches, 102u);
}

// ------------------------------------------------- tokenizer differential

TEST(TokenizerDifferential, ArenaMatchesAllocatingReference) {
  const std::string text = lined_text(11, 32_kB);
  TokenArena arena;
  for (const bool keep_punct : {false, true}) {
    for_each_sentence(text, [&](std::string_view sentence) {
      const std::vector<std::string> ref = tokenize(sentence, keep_punct);
      const std::vector<std::string_view>& got =
          arena.tokenize(sentence, keep_punct);
      ASSERT_EQ(got.size(), ref.size()) << sentence;
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(got[i], ref[i]) << sentence;
      }
    });
  }
}

// ------------------------------------------------------ POS differential

TEST(PosDifferential, TagIntoAndTagDocumentMatchStringPipeline) {
  Rng rng(17);
  corpus::TextGenerator gen({}, rng);
  PosTagger tagger;
  tagger.train(gen.tagged_corpus(300));
  const std::string text = lined_text(19, 16_kB);

  for (const DecodeMode mode :
       {DecodeMode::kGreedyLeft3, DecodeMode::kViterbi}) {
    TokenArena arena;
    std::vector<PosTag> via_views;
    std::size_t total_tokens = 0;
    for_each_sentence(text, [&](std::string_view sentence) {
      const std::vector<std::string> words =
          tokenize(sentence, /*keep_punct=*/true);
      if (words.empty()) return;
      const std::vector<PosTag> via_strings = tagger.tag(words, mode);

      const std::vector<std::string_view>& spans =
          arena.tokenize(sentence, /*keep_punct=*/true);
      tagger.tag_into(spans, mode, via_views);
      ASSERT_EQ(via_views, via_strings);
      total_tokens += via_strings.size();
    });
    EXPECT_EQ(tagger.tag_document(text, mode), total_tokens);
  }
}

// ---------------------------------------- concurrency: thread-local arena

TEST(WordCountDifferential, ConcurrentArenaMappersMatchSingleThread) {
  // word_count's mapper tokenizes through a thread_local TokenArena; the
  // output must not depend on how documents land on worker threads.
  Rng rng(23);
  corpus::TextGenerator gen({}, rng);
  std::vector<std::string> files;
  for (int d = 0; d < 64; ++d) {
    files.push_back(gen.text_of_size(Bytes(2000)));
  }
  const mr::MapReduceJob job = mr::word_count_job();
  const std::vector<mr::Split> splits = mr::whole_file_splits(files);
  const mr::JobResult seq = mr::LocalRunner(1).run(job, files, splits);
  const mr::JobResult par = mr::LocalRunner(4).run(job, files, splits);
  ASSERT_EQ(par.output.size(), seq.output.size());
  for (std::size_t i = 0; i < seq.output.size(); ++i) {
    EXPECT_EQ(par.output[i].key, seq.output[i].key);
    EXPECT_EQ(par.output[i].value, seq.output[i].value);
  }
}

}  // namespace
}  // namespace reshape::textproc
