#include "textproc/scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/textgen.hpp"

namespace reshape::textproc {
namespace {

TEST(LiteralSearcher, FindsFirstOccurrence) {
  const LiteralSearcher s("needle");
  EXPECT_EQ(s.find("a needle in a haystack"), 2u);
  EXPECT_EQ(s.find("no match here"), LiteralSearcher::npos);
  EXPECT_EQ(s.find("needle"), 0u);
}

TEST(LiteralSearcher, FindFromOffset) {
  const LiteralSearcher s("ab");
  EXPECT_EQ(s.find("ab ab ab", 1), 3u);
  EXPECT_EQ(s.find("ab ab ab", 7), LiteralSearcher::npos);
}

TEST(LiteralSearcher, CountsOverlapping) {
  const LiteralSearcher s("aa");
  EXPECT_EQ(s.count("aaaa"), 3u);
  EXPECT_EQ(s.count(""), 0u);
  EXPECT_EQ(s.count("a"), 0u);
}

TEST(LiteralSearcher, SingleCharMemchrPathMatchesGeneralPath) {
  // m == 1 takes the memchr fast path; results must agree with
  // std::string_view::find at every offset, including misses and the
  // last byte.
  const LiteralSearcher s("e");
  const std::string_view text = "the quick brown fox jumps over thee";
  for (std::size_t from = 0; from <= text.size(); ++from) {
    EXPECT_EQ(s.find(text, from), text.find('e', from)) << "from " << from;
  }
  EXPECT_EQ(s.count(text), 4u);
  EXPECT_EQ(s.find("", 0), LiteralSearcher::npos);
  EXPECT_EQ(LiteralSearcher("x").find("x"), 0u);
  EXPECT_EQ(LiteralSearcher("x").find("abc"), LiteralSearcher::npos);
}

TEST(LiteralSearcher, SingleCharAgreesOnRandomText) {
  Rng rng(11);
  corpus::TextGenerator gen({}, rng);
  const std::string text = gen.text_of_size(20_kB);
  for (const char c : {'e', 'z', ' ', 'q'}) {
    const LiteralSearcher s(std::string(1, c));
    EXPECT_EQ(s.find(text), text.find(c)) << c;
    EXPECT_EQ(s.count(text),
              static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), c)))
        << c;
  }
}

TEST(LiteralSearcher, PatternLongerThanText) {
  const LiteralSearcher s("abcdef");
  EXPECT_EQ(s.find("abc"), LiteralSearcher::npos);
}

TEST(LiteralSearcher, EmptyPatternThrows) {
  EXPECT_THROW(LiteralSearcher(""), Error);
}

TEST(LiteralSearcher, AgreesWithStringFindOnRandomText) {
  Rng rng(7);
  corpus::TextGenerator gen({}, rng);
  const std::string text = gen.text_of_size(50_kB);
  for (const std::string pattern : {"tion", "the", "ly ", "zzqq"}) {
    const LiteralSearcher s(pattern);
    EXPECT_EQ(s.find(text), text.find(pattern)) << pattern;
  }
}

TEST(LiteralSearcher, SimdFilterAgreesWithReferenceNearBlockBoundaries) {
  // The vectorized find examines 64 candidate positions per iteration;
  // matches placed at every offset in and around one block exercise the
  // lane arithmetic and the scalar tail.
  const std::string pattern = "needle";
  const LiteralSearcher s(pattern);
  for (std::size_t offset = 0; offset < 130; ++offset) {
    std::string text(offset, 'x');
    text += pattern;
    text += std::string(7, 'y');  // tail shorter than one block
    EXPECT_EQ(s.find(text), offset) << offset;
    EXPECT_EQ(s.find(text), s.find_reference(text)) << offset;
    EXPECT_EQ(s.find(text, offset + 1), LiteralSearcher::npos) << offset;
  }
}

TEST(LiteralSearcher, PathologicalRepeatsStayCorrect) {
  // Both probe bytes occur everywhere: the filter degrades to the BMH
  // oracle instead of O(n*m) verification, and results stay identical.
  const std::string text(4096, 'a');
  const LiteralSearcher absent("aaaaaaab");
  EXPECT_EQ(absent.find(text), LiteralSearcher::npos);
  const LiteralSearcher present(std::string(8, 'a'));
  for (const std::size_t from : {0u, 1u, 17u, 4087u, 4089u}) {
    EXPECT_EQ(present.find(text, from), present.find_reference(text, from))
        << from;
  }
}

TEST(GrepLiteral, MatchesReferenceOnFixtures) {
  const std::string_view fixtures[] = {
      "",
      "\n",
      "\n\n\n",
      "word",
      "word\n",
      "\nword",
      "a word here\nanother word\nno match\nword word word\n",
      "ends without newline but with word",
      "word\nword\nword",
  };
  for (const std::string_view text : fixtures) {
    const GrepResult got = grep_literal(text, "word");
    const GrepResult ref = grep_literal_reference(text, "word");
    EXPECT_EQ(got.matching_lines, ref.matching_lines) << "\"" << text << "\"";
    EXPECT_EQ(got.total_lines, ref.total_lines) << "\"" << text << "\"";
    EXPECT_EQ(got.bytes_scanned, ref.bytes_scanned) << "\"" << text << "\"";
  }
}

TEST(GrepLiteral, PatternContainingNewlineNeverMatchesALine) {
  // Per-line semantics: no single line can contain '\n', so the verdict
  // is zero matches — on both kernels — while lines still get counted.
  const std::string text = "ab\ncd\nab\ncd\n";
  const GrepResult got = grep_literal(text, "ab\ncd");
  const GrepResult ref = grep_literal_reference(text, "ab\ncd");
  EXPECT_EQ(got.matching_lines, 0u);
  EXPECT_EQ(ref.matching_lines, 0u);
  EXPECT_EQ(got.total_lines, 4u);
  EXPECT_EQ(ref.total_lines, 4u);
}

TEST(GrepRegex, MatchesReferenceOnFixtures) {
  const std::string_view fixtures[] = {
      "", "\n", "abc", "abc\n123", "no digits\nhere either\n", "9\n\n9"};
  for (const std::string pattern : {"[0-9]+", "^a", "c$", "a.c"}) {
    for (const std::string_view text : fixtures) {
      const GrepResult got = grep_regex(text, pattern);
      const GrepResult ref = grep_regex_reference(text, pattern);
      EXPECT_EQ(got.matching_lines, ref.matching_lines)
          << "/" << pattern << "/ on \"" << text << "\"";
      EXPECT_EQ(got.total_lines, ref.total_lines)
          << "/" << pattern << "/ on \"" << text << "\"";
    }
  }
}

TEST(RegexLite, LiteralsAndDot) {
  EXPECT_TRUE(RegexLite("cat").search("concatenate"));
  EXPECT_FALSE(RegexLite("dog").search("concatenate"));
  EXPECT_TRUE(RegexLite("c.t").search("cut"));
  EXPECT_FALSE(RegexLite("c.t").search("coat"));
}

TEST(RegexLite, StarAndPlus) {
  EXPECT_TRUE(RegexLite("ab*c").search("ac"));
  EXPECT_TRUE(RegexLite("ab*c").search("abbbc"));
  EXPECT_FALSE(RegexLite("ab+c").search("ac"));
  EXPECT_TRUE(RegexLite("ab+c").search("abc"));
}

TEST(RegexLite, Optional) {
  EXPECT_TRUE(RegexLite("colou?r").search("color"));
  EXPECT_TRUE(RegexLite("colou?r").search("colour"));
  EXPECT_FALSE(RegexLite("colou?r").search("colouur"));
}

TEST(RegexLite, CharacterClasses) {
  EXPECT_TRUE(RegexLite("[abc]at").search("bat"));
  EXPECT_FALSE(RegexLite("[abc]at").search("rat"));
  EXPECT_TRUE(RegexLite("[a-z]+").search("word"));
  EXPECT_TRUE(RegexLite("[^0-9]").search("a"));
  EXPECT_FALSE(RegexLite("[^0-9]+").search("123"));
}

TEST(RegexLite, Anchors) {
  EXPECT_TRUE(RegexLite("^start").search("start here"));
  EXPECT_FALSE(RegexLite("^start").search("a start"));
  EXPECT_TRUE(RegexLite("end$").search("the end"));
  EXPECT_FALSE(RegexLite("end$").search("end of it"));
  EXPECT_TRUE(RegexLite("^whole$").search("whole"));
  EXPECT_FALSE(RegexLite("^whole$").search("wholes"));
}

TEST(RegexLite, Escapes) {
  EXPECT_TRUE(RegexLite("a\\.b").search("a.b"));
  EXPECT_FALSE(RegexLite("a\\.b").search("axb"));
  EXPECT_TRUE(RegexLite("a\\*").search("a*"));
}

TEST(RegexLite, FullMatch) {
  EXPECT_TRUE(RegexLite("[a-z]+tion").full_match("motivation"));
  EXPECT_FALSE(RegexLite("[a-z]+tion").full_match("motivations"));
}

TEST(RegexLite, GreedyStarBacktracks) {
  EXPECT_TRUE(RegexLite("a.*b").search("axxbzzb"));
  EXPECT_TRUE(RegexLite("a.*bz").search("axxbzzb"));
}

TEST(RegexLite, MalformedPatternsThrow) {
  EXPECT_THROW(RegexLite("*a"), Error);
  EXPECT_THROW(RegexLite("[abc"), Error);
  EXPECT_THROW(RegexLite("a\\"), Error);
}

TEST(RegexLite, DescendingClassRangeThrows) {
  // Formerly expanded as a signed-char loop: [z-a] silently produced an
  // empty class and high-byte ranges were UB.  Now rejected up front.
  EXPECT_THROW(RegexLite("[z-a]"), Error);
  EXPECT_THROW(RegexLite("x[9-0]y"), Error);
}

TEST(RegexLite, HighByteClassRanges) {
  // Ranges over bytes >= 0x80 must work regardless of char signedness
  // (the expansion iterates as unsigned char).
  const RegexLite re("[\x80-\xff]");
  EXPECT_TRUE(re.search("ab\xc3\xa9"));  // UTF-8 é bytes land in range
  EXPECT_FALSE(re.search("plain ascii"));
  const RegexLite wrap("[\x7e-\x80]");
  EXPECT_TRUE(wrap.search("~"));
  EXPECT_TRUE(wrap.search("\x7f"));
  EXPECT_TRUE(wrap.search("\x80"));
  EXPECT_FALSE(wrap.search("a"));
}

TEST(RegexLite, CompilesSmallPatternsToDfa) {
  for (const std::string pattern :
       {"cat", "[a-z]+tion", "^a.*b$", "colou?r", "[^0-9]+x"}) {
    EXPECT_TRUE(RegexLite(pattern).compiled()) << pattern;
  }
  // More positions than fit in the DFA's 64-bit masks: falls back to the
  // backtracker but stays correct.
  const std::string big(RegexLite::kMaxDfaPositions + 1, 'a');
  const RegexLite fallback(big);
  EXPECT_FALSE(fallback.compiled());
  EXPECT_TRUE(fallback.search(std::string(70, 'a')));
  EXPECT_FALSE(fallback.search(std::string(60, 'a')));
}

TEST(RegexLite, RequiredFirstBytePrefilter) {
  // Only one byte leaves the start state -> memchr prefilter engages.
  EXPECT_EQ(RegexLite("cat").required_first_byte(), 'c');
  EXPECT_EQ(RegexLite("xyzzy[a-z]+").required_first_byte(), 'x');
  // Several possible first bytes -> no single required byte.
  EXPECT_EQ(RegexLite("[ab]cd").required_first_byte(), -1);
  // Anchored patterns never probe.
  EXPECT_EQ(RegexLite("^cat").required_first_byte(), -1);
}

TEST(RegexLite, DfaAgreesWithReferenceOnEdgeCases) {
  const std::string_view cases[] = {"", "a", "\n", "ab\ncd", "aaaa",
                                    "cat", "concat", "catalog"};
  for (const std::string pattern :
       {"", "a*", "^$", "^a*$", "c.t", "ca+t?", "[a-z]*$", "^[ac]+"}) {
    const RegexLite re(pattern);
    for (const std::string_view text : cases) {
      EXPECT_EQ(re.search(text), re.search_reference(text))
          << "/" << pattern << "/ on \"" << text << "\"";
    }
  }
}

TEST(RegexLite, DotExcludesNewlineThroughTheDfa) {
  EXPECT_FALSE(RegexLite("a.b").search("a\nb"));
  EXPECT_TRUE(RegexLite("a.b").search("axb"));
  EXPECT_FALSE(RegexLite("a.*b").search("a\nb"));
}

TEST(GrepLiteral, CountsMatchingLines) {
  const std::string text = "alpha beta\ngamma\nalpha alpha\n";
  const GrepResult r = grep_literal(text, "alpha");
  EXPECT_EQ(r.matching_lines, 2u);  // lines, not occurrences
  EXPECT_EQ(r.total_lines, 3u);
  EXPECT_EQ(r.bytes_scanned, text.size());
}

TEST(GrepLiteral, NoTrailingNewline) {
  const GrepResult r = grep_literal("only line with word", "word");
  EXPECT_EQ(r.matching_lines, 1u);
  EXPECT_EQ(r.total_lines, 1u);
}

TEST(GrepLiteral, NonsenseWordScansEverythingFindsNothing) {
  // §5.1's worst case: a word that never occurs forces a full traversal.
  Rng rng(3);
  corpus::TextGenerator gen({}, rng);
  const std::string text = gen.text_of_size(100_kB);
  const GrepResult r = grep_literal(text, "xyzzyplugh");
  EXPECT_EQ(r.matching_lines, 0u);
  EXPECT_EQ(r.bytes_scanned, text.size());
}

TEST(GrepRegex, PatternOverLines) {
  const GrepResult r =
      grep_regex("date 2008\nno digits\nyear 1999\n", "[0-9]+");
  EXPECT_EQ(r.matching_lines, 2u);
}

}  // namespace
}  // namespace reshape::textproc
