#include "textproc/scanner.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/textgen.hpp"

namespace reshape::textproc {
namespace {

TEST(LiteralSearcher, FindsFirstOccurrence) {
  const LiteralSearcher s("needle");
  EXPECT_EQ(s.find("a needle in a haystack"), 2u);
  EXPECT_EQ(s.find("no match here"), LiteralSearcher::npos);
  EXPECT_EQ(s.find("needle"), 0u);
}

TEST(LiteralSearcher, FindFromOffset) {
  const LiteralSearcher s("ab");
  EXPECT_EQ(s.find("ab ab ab", 1), 3u);
  EXPECT_EQ(s.find("ab ab ab", 7), LiteralSearcher::npos);
}

TEST(LiteralSearcher, CountsOverlapping) {
  const LiteralSearcher s("aa");
  EXPECT_EQ(s.count("aaaa"), 3u);
  EXPECT_EQ(s.count(""), 0u);
  EXPECT_EQ(s.count("a"), 0u);
}

TEST(LiteralSearcher, SingleCharMemchrPathMatchesGeneralPath) {
  // m == 1 takes the memchr fast path; results must agree with
  // std::string_view::find at every offset, including misses and the
  // last byte.
  const LiteralSearcher s("e");
  const std::string_view text = "the quick brown fox jumps over thee";
  for (std::size_t from = 0; from <= text.size(); ++from) {
    EXPECT_EQ(s.find(text, from), text.find('e', from)) << "from " << from;
  }
  EXPECT_EQ(s.count(text), 4u);
  EXPECT_EQ(s.find("", 0), LiteralSearcher::npos);
  EXPECT_EQ(LiteralSearcher("x").find("x"), 0u);
  EXPECT_EQ(LiteralSearcher("x").find("abc"), LiteralSearcher::npos);
}

TEST(LiteralSearcher, SingleCharAgreesOnRandomText) {
  Rng rng(11);
  corpus::TextGenerator gen({}, rng);
  const std::string text = gen.text_of_size(20_kB);
  for (const char c : {'e', 'z', ' ', 'q'}) {
    const LiteralSearcher s(std::string(1, c));
    EXPECT_EQ(s.find(text), text.find(c)) << c;
    EXPECT_EQ(s.count(text),
              static_cast<std::size_t>(
                  std::count(text.begin(), text.end(), c)))
        << c;
  }
}

TEST(LiteralSearcher, PatternLongerThanText) {
  const LiteralSearcher s("abcdef");
  EXPECT_EQ(s.find("abc"), LiteralSearcher::npos);
}

TEST(LiteralSearcher, EmptyPatternThrows) {
  EXPECT_THROW(LiteralSearcher(""), Error);
}

TEST(LiteralSearcher, AgreesWithStringFindOnRandomText) {
  Rng rng(7);
  corpus::TextGenerator gen({}, rng);
  const std::string text = gen.text_of_size(50_kB);
  for (const std::string pattern : {"tion", "the", "ly ", "zzqq"}) {
    const LiteralSearcher s(pattern);
    EXPECT_EQ(s.find(text), text.find(pattern)) << pattern;
  }
}

TEST(RegexLite, LiteralsAndDot) {
  EXPECT_TRUE(RegexLite("cat").search("concatenate"));
  EXPECT_FALSE(RegexLite("dog").search("concatenate"));
  EXPECT_TRUE(RegexLite("c.t").search("cut"));
  EXPECT_FALSE(RegexLite("c.t").search("coat"));
}

TEST(RegexLite, StarAndPlus) {
  EXPECT_TRUE(RegexLite("ab*c").search("ac"));
  EXPECT_TRUE(RegexLite("ab*c").search("abbbc"));
  EXPECT_FALSE(RegexLite("ab+c").search("ac"));
  EXPECT_TRUE(RegexLite("ab+c").search("abc"));
}

TEST(RegexLite, Optional) {
  EXPECT_TRUE(RegexLite("colou?r").search("color"));
  EXPECT_TRUE(RegexLite("colou?r").search("colour"));
  EXPECT_FALSE(RegexLite("colou?r").search("colouur"));
}

TEST(RegexLite, CharacterClasses) {
  EXPECT_TRUE(RegexLite("[abc]at").search("bat"));
  EXPECT_FALSE(RegexLite("[abc]at").search("rat"));
  EXPECT_TRUE(RegexLite("[a-z]+").search("word"));
  EXPECT_TRUE(RegexLite("[^0-9]").search("a"));
  EXPECT_FALSE(RegexLite("[^0-9]+").search("123"));
}

TEST(RegexLite, Anchors) {
  EXPECT_TRUE(RegexLite("^start").search("start here"));
  EXPECT_FALSE(RegexLite("^start").search("a start"));
  EXPECT_TRUE(RegexLite("end$").search("the end"));
  EXPECT_FALSE(RegexLite("end$").search("end of it"));
  EXPECT_TRUE(RegexLite("^whole$").search("whole"));
  EXPECT_FALSE(RegexLite("^whole$").search("wholes"));
}

TEST(RegexLite, Escapes) {
  EXPECT_TRUE(RegexLite("a\\.b").search("a.b"));
  EXPECT_FALSE(RegexLite("a\\.b").search("axb"));
  EXPECT_TRUE(RegexLite("a\\*").search("a*"));
}

TEST(RegexLite, FullMatch) {
  EXPECT_TRUE(RegexLite("[a-z]+tion").full_match("motivation"));
  EXPECT_FALSE(RegexLite("[a-z]+tion").full_match("motivations"));
}

TEST(RegexLite, GreedyStarBacktracks) {
  EXPECT_TRUE(RegexLite("a.*b").search("axxbzzb"));
  EXPECT_TRUE(RegexLite("a.*bz").search("axxbzzb"));
}

TEST(RegexLite, MalformedPatternsThrow) {
  EXPECT_THROW(RegexLite("*a"), Error);
  EXPECT_THROW(RegexLite("[abc"), Error);
  EXPECT_THROW(RegexLite("a\\"), Error);
}

TEST(GrepLiteral, CountsMatchingLines) {
  const std::string text = "alpha beta\ngamma\nalpha alpha\n";
  const GrepResult r = grep_literal(text, "alpha");
  EXPECT_EQ(r.matching_lines, 2u);  // lines, not occurrences
  EXPECT_EQ(r.total_lines, 3u);
  EXPECT_EQ(r.bytes_scanned, text.size());
}

TEST(GrepLiteral, NoTrailingNewline) {
  const GrepResult r = grep_literal("only line with word", "word");
  EXPECT_EQ(r.matching_lines, 1u);
  EXPECT_EQ(r.total_lines, 1u);
}

TEST(GrepLiteral, NonsenseWordScansEverythingFindsNothing) {
  // §5.1's worst case: a word that never occurs forces a full traversal.
  Rng rng(3);
  corpus::TextGenerator gen({}, rng);
  const std::string text = gen.text_of_size(100_kB);
  const GrepResult r = grep_literal(text, "xyzzyplugh");
  EXPECT_EQ(r.matching_lines, 0u);
  EXPECT_EQ(r.bytes_scanned, text.size());
}

TEST(GrepRegex, PatternOverLines) {
  const GrepResult r =
      grep_regex("date 2008\nno digits\nyear 1999\n", "[0-9]+");
  EXPECT_EQ(r.matching_lines, 2u);
}

}  // namespace
}  // namespace reshape::textproc
