#include "textproc/profiler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "textproc/scanner.hpp"

namespace reshape::textproc {
namespace {

TEST(AppProfiler, ChunkSplitsExactly) {
  const std::string text(10'000, 'x');
  const auto files = AppProfiler::chunk(text, 3_kB);
  ASSERT_EQ(files.size(), 4u);
  EXPECT_EQ(files[0].size(), 3000u);
  EXPECT_EQ(files[3].size(), 1000u);
}

TEST(AppProfiler, MeasuresSyntheticAppWithKnownCosts) {
  // A fake app with exactly known per-file and per-byte costs (busy-wait
  // free: we just burn deterministic arithmetic per unit).
  constexpr double kPerFileUnits = 40'000.0;
  constexpr double kPerByteUnits = 60.0;
  std::atomic<double> sink{0.0};
  const App app = [&sink](const std::vector<std::string>& files) {
    double acc = 0.0;
    for (const std::string& f : files) {
      for (double i = 0; i < kPerFileUnits; ++i) acc += i * 1e-9;
      for (const char c : f) acc += static_cast<double>(c) * kPerByteUnits * 1e-9;
    }
    sink.store(acc);
  };

  corpus::TextGenerator gen({}, Rng(3));
  AppProfiler::Options options;
  options.probe_volume = 1_MB;
  options.repetitions = 3;
  const MeasuredCosts costs = AppProfiler(options).profile(app, gen);

  // The many-small layout must be measurably slower per file.
  EXPECT_GT(costs.per_file_overhead.value(), 0.0);
  EXPECT_GT(costs.seconds_per_byte, 0.0);
  EXPECT_GT(costs.reference_run.value(), 0.0);
}

TEST(AppProfiler, RealScannerIsByteDominated) {
  // The BMH scanner has negligible per-file cost relative to its per-byte
  // scan cost at these sizes.
  const App scan = [](const std::vector<std::string>& files) {
    const LiteralSearcher searcher("xyzzyplugh");
    std::size_t total = 0;
    for (const std::string& f : files) total += searcher.count(f);
    ASSERT_EQ(total, 0u);
  };
  corpus::TextGenerator gen({}, Rng(4));
  AppProfiler::Options options;
  options.probe_volume = 4_MB;
  const MeasuredCosts costs = AppProfiler(options).profile(scan, gen);
  EXPECT_GT(costs.seconds_per_byte, 0.0);
  // Scanning 4 MB should take well under a second on any host.
  EXPECT_LT(costs.reference_run.value(), 2.0);
}

TEST(AppProfiler, ToCostProfileLiftsConstants) {
  MeasuredCosts costs;
  costs.setup = Seconds(0.5);
  costs.per_file_overhead = Seconds(0.002);
  costs.seconds_per_byte = 1e-8;
  const cloud::AppCostProfile p =
      to_cost_profile(costs, "scan", 1.0, cloud::MemoryPressure{64_kB, 0.05});
  EXPECT_EQ(p.name, "scan");
  EXPECT_DOUBLE_EQ(p.setup.value(), 0.5);
  EXPECT_DOUBLE_EQ(p.per_file_overhead.value(), 0.002);
  EXPECT_DOUBLE_EQ(p.cpu_seconds_per_byte, 1e-8);
  EXPECT_EQ(p.memory.comfortable, 64_kB);
}

TEST(AppProfiler, InvalidOptionsThrow) {
  AppProfiler::Options bad;
  bad.small_unit = 1_MB;
  bad.large_unit = 1_kB;
  corpus::TextGenerator gen({}, Rng(5));
  const App noop = [](const std::vector<std::string>&) {};
  EXPECT_THROW((void)AppProfiler(bad).profile(noop, gen), Error);
}

}  // namespace
}  // namespace reshape::textproc
