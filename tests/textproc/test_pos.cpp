#include "textproc/pos.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/textgen.hpp"
#include "textproc/tokenizer.hpp"

namespace reshape::textproc {
namespace {

using corpus::TaggedSentence;
using corpus::TaggedWord;
using corpus::TextGenerator;

std::vector<TaggedSentence> training_corpus(std::size_t sentences = 3000,
                                            std::uint64_t seed = 17) {
  TextGenerator gen({}, Rng(seed));
  return gen.tagged_corpus(sentences);
}

class PosTaggerFixture : public ::testing::Test {
 protected:
  void SetUp() override { tagger_.train(training_corpus()); }
  PosTagger tagger_;
};

TEST(Lexicon, ObservesAndRanksTags) {
  Lexicon lex;
  lex.observe({{"run", PosTag::kVerb},
               {"run", PosTag::kVerb},
               {"run", PosTag::kNoun}});
  EXPECT_TRUE(lex.knows("run"));
  EXPECT_FALSE(lex.knows("walk"));
  EXPECT_EQ(lex.best_tag("run"), PosTag::kVerb);
  EXPECT_NEAR(lex.tag_probability("run", PosTag::kVerb), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(lex.tag_probability("run", PosTag::kNoun), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(lex.tag_probability("walk", PosTag::kVerb), 0.0);
}

TEST(Lexicon, SuffixGuessLearnsMorphology) {
  Lexicon lex;
  lex.observe({{"rapidly", PosTag::kAdv},
               {"slowly", PosTag::kAdv},
               {"motion", PosTag::kNoun},
               {"station", PosTag::kNoun}});
  EXPECT_EQ(lex.guess_by_suffix("quickly"), PosTag::kAdv);
  EXPECT_EQ(lex.guess_by_suffix("nation"), PosTag::kNoun);
}

TEST(Lexicon, EmissionSumsToOne) {
  Lexicon lex;
  lex.observe({{"word", PosTag::kNoun}, {"word", PosTag::kVerb}});
  const auto e = lex.emission("word");
  double sum = 0.0;
  for (const double p : e) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  const auto unknown = lex.emission("zzz");
  sum = 0.0;
  for (const double p : unknown) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TransitionModel, LearnsSentenceStructure) {
  TransitionModel tm;
  TextGenerator gen({}, Rng(5));
  for (const TaggedSentence& s : gen.tagged_corpus(2000)) tm.observe(s);
  // After a determiner, a noun or adjective is far likelier than a verb.
  const double det_noun =
      tm.probability(PosTag::kPunct, PosTag::kDet, PosTag::kNoun);
  const double det_verb =
      tm.probability(PosTag::kPunct, PosTag::kDet, PosTag::kVerb);
  EXPECT_GT(det_noun, 4.0 * det_verb);
}

TEST(TransitionModel, SmoothingKeepsUnseenPositive) {
  const TransitionModel tm;
  EXPECT_GT(tm.probability(PosTag::kAdv, PosTag::kAdv, PosTag::kAdv), 0.0);
}

TEST_F(PosTaggerFixture, UntrainedTaggerThrows) {
  const PosTagger fresh;
  EXPECT_FALSE(fresh.trained());
  EXPECT_THROW((void)fresh.tag({"word"}), Error);
}

TEST_F(PosTaggerFixture, GreedyAccuracyIsHighOnHeldOut) {
  // Same vocabulary, unseen sentence stream: the proper held-out split.
  TextGenerator gen({}, Rng(17), Rng(99));
  const auto held_out = gen.tagged_corpus(300);
  const double accuracy =
      tagger_.evaluate(held_out, DecodeMode::kGreedyLeft3);
  EXPECT_GT(accuracy, 0.95);
}

TEST_F(PosTaggerFixture, SuffixGeneralizationToUnseenVocabulary) {
  // A corpus over an entirely different synthetic vocabulary: every open-
  // class token is OOV, so accuracy rests on the suffix guesser plus the
  // closed classes — clearly above chance, clearly below in-vocabulary.
  TextGenerator gen({}, Rng(99));
  const auto foreign = gen.tagged_corpus(300);
  const double accuracy =
      tagger_.evaluate(foreign, DecodeMode::kGreedyLeft3);
  EXPECT_GT(accuracy, 0.80);
  EXPECT_LT(accuracy, 0.99);
}

TEST_F(PosTaggerFixture, ViterbiAtLeastMatchesGreedy) {
  TextGenerator gen({}, Rng(100));
  const auto held_out = gen.tagged_corpus(150);
  const double greedy = tagger_.evaluate(held_out, DecodeMode::kGreedyLeft3);
  const double viterbi = tagger_.evaluate(held_out, DecodeMode::kViterbi);
  EXPECT_GE(viterbi, greedy - 0.02);
  EXPECT_GT(viterbi, 0.90);
}

TEST_F(PosTaggerFixture, HandlesUnknownWordsViaSuffix) {
  // Words never seen in training, but with clear class suffixes.
  const auto tags = tagger_.tag({"the", "zorgful", "blorbment", "quzzified"});
  EXPECT_EQ(tags[0], PosTag::kDet);
  EXPECT_EQ(tags[1], PosTag::kAdj);
  EXPECT_EQ(tags[2], PosTag::kNoun);
}

TEST_F(PosTaggerFixture, EmptySentence) {
  EXPECT_TRUE(tagger_.tag({}).empty());
  EXPECT_TRUE(tagger_.tag({}, DecodeMode::kViterbi).empty());
}

TEST_F(PosTaggerFixture, TagDocumentCountsTokens) {
  TextGenerator gen({}, Rng(55));
  const std::string text = gen.text_of_size(5_kB);
  const std::size_t tokens = tagger_.tag_document(text);
  EXPECT_GT(tokens, 500u);  // ~6 bytes/word average
}

TEST_F(PosTaggerFixture, LexiconCoversGeneratorVocabulary) {
  EXPECT_GT(tagger_.lexicon().vocabulary_size(), 300u);
}

TEST(PosTagger, TrainingOnEmptyCorpusThrows) {
  PosTagger t;
  EXPECT_THROW(t.train({}), Error);
}

TEST(PosTagger, EmptyInputsTagToNothing) {
  PosTagger t;
  t.train(training_corpus(200));
  EXPECT_TRUE(t.tag({}).empty());
  std::vector<PosTag> out{PosTag::kVerb};  // stale content must be cleared
  t.tag_into({}, DecodeMode::kViterbi, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(t.tag_document(""), 0u);
  EXPECT_EQ(t.tag_document("   \n\t  "), 0u);
}

TEST(PosTagger, UntrainedTaggerOnEmptyTextReturnsZero) {
  // The trained-precondition fires per nonempty sentence, so a fresh
  // tagger still answers 0 for text with no sentences (seed behaviour).
  const PosTagger t;
  EXPECT_EQ(t.tag_document(""), 0u);
  EXPECT_THROW(t.tag_document("a sentence."), Error);
}

TEST(PosTagger, AllPunctuationSentences) {
  PosTagger t;
  t.train(training_corpus(200));
  // "?! .. !" splits into five single-punctuation sentences; every
  // punctuation token must come out tagged, none dropped.
  const std::size_t tokens = t.tag_document("?! .. !");
  EXPECT_EQ(tokens, 5u);
  const std::vector<std::string> words{".", "."};
  for (const PosTag tag : t.tag(words)) EXPECT_EQ(tag, PosTag::kPunct);
}

TEST(Lexicon, HeterogeneousLookupsTakeStringViews) {
  Lexicon lex;
  lex.observe({TaggedWord{"walk", PosTag::kVerb},
               TaggedWord{"walks", PosTag::kVerb}});
  // Queries through substrings of a larger buffer: no std::string key is
  // ever materialized (the maps use transparent hashing).
  const std::string_view buffer = "walks quickly";
  EXPECT_TRUE(lex.knows(buffer.substr(0, 5)));
  EXPECT_FALSE(lex.knows(buffer.substr(6)));
  EXPECT_EQ(lex.best_tag(buffer.substr(0, 4)), PosTag::kVerb);
  EXPECT_GT(lex.tag_probability(buffer.substr(0, 5), PosTag::kVerb), 0.99);
}

TEST(Lexicon, MaxSuffixWordsUseAllSuffixLengths) {
  Lexicon lex;
  // One observed word ending in "ation"; unknown words should match via
  // the longest shared suffix, capped at kMaxSuffix characters.
  for (int i = 0; i < 4; ++i) {
    lex.observe({TaggedWord{"motivation", PosTag::kNoun}});
  }
  static_assert(Lexicon::kMaxSuffix == 4);
  EXPECT_EQ(lex.guess_by_suffix("locomotion"), PosTag::kNoun);  // "tion"
  // A word exactly kMaxSuffix long is its own longest suffix.
  lex.observe({TaggedWord{"runs", PosTag::kVerb}});
  EXPECT_EQ(lex.guess_by_suffix("runs"), PosTag::kVerb);
  // Shorter than kMaxSuffix: only the short suffix tables apply.
  EXPECT_EQ(lex.guess_by_suffix("on"), PosTag::kNoun);
}

TEST(PosTagger, DocumentPipelineMatchesManualPipelineOnBoundaries) {
  PosTagger t;
  t.train(training_corpus(200));
  // Sentence boundaries at buffer edges: terminator as last byte, no
  // terminator at all, and a document of exactly one word.
  for (const std::string_view text :
       {"word", "word.", ". word", "one two three"}) {
    std::size_t expected = 0;
    for (const std::string_view s : split_sentences(text)) {
      const auto words = tokenize(s, /*keep_punct=*/true);
      if (!words.empty()) expected += t.tag(words).size();
    }
    EXPECT_EQ(t.tag_document(text), expected) << text;
  }
}

}  // namespace
}  // namespace reshape::textproc
