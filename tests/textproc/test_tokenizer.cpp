#include "textproc/tokenizer.hpp"

#include <gtest/gtest.h>

namespace reshape::textproc {
namespace {

TEST(SplitSentences, BasicTerminators) {
  const auto s = split_sentences("One two. Three four! Five?");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "One two.");
  EXPECT_EQ(s[1], "Three four!");
  EXPECT_EQ(s[2], "Five?");
}

TEST(SplitSentences, TrailingFragmentKept) {
  const auto s = split_sentences("Done. trailing words");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], "trailing words");
}

TEST(SplitSentences, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_sentences("").empty());
  EXPECT_TRUE(split_sentences("   \n\t ").empty());
  // Consecutive terminators produce no empty sentences.
  const auto s = split_sentences("Hi... there.");
  for (const auto& sentence : s) EXPECT_FALSE(sentence.empty());
}

TEST(Tokenize, LowercasesAndSplitsOnNonAlpha) {
  const auto t = tokenize("The Quick-Brown fox!");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "the");
  EXPECT_EQ(t[1], "quick");
  EXPECT_EQ(t[2], "brown");
  EXPECT_EQ(t[3], "fox");
}

TEST(Tokenize, KeepPunctEmitsSingleCharTokens) {
  const auto t = tokenize("stop.", /*keep_punct=*/true);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "stop");
  EXPECT_EQ(t[1], ".");
}

TEST(Tokenize, NumbersAreSeparators) {
  const auto t = tokenize("a1b2c");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
}

TEST(CountWords, MatchesTokenCount) {
  EXPECT_EQ(count_words("one two three."), 3u);
  EXPECT_EQ(count_words(""), 0u);
  EXPECT_EQ(count_words("...!!!"), 0u);
  EXPECT_EQ(count_words("hyphen-ated"), 2u);
}

TEST(MeanSentenceLength, Averages) {
  EXPECT_DOUBLE_EQ(mean_sentence_length("One two. Three four five six."),
                   3.0);
  EXPECT_DOUBLE_EQ(mean_sentence_length(""), 0.0);
}

TEST(TokenArena, EmptyAndDegenerateInputs) {
  TokenArena arena;
  EXPECT_TRUE(arena.tokenize("").empty());
  EXPECT_TRUE(arena.tokenize("   \t\n  ").empty());
  EXPECT_TRUE(arena.tokenize("12345 678").empty());
  // All-punctuation sentences: nothing without keep_punct, one token per
  // punctuation character with it.
  EXPECT_TRUE(arena.tokenize("?!...").empty());
  const auto& punct = arena.tokenize("?!...", /*keep_punct=*/true);
  ASSERT_EQ(punct.size(), 5u);
  EXPECT_EQ(punct[0], "?");
  EXPECT_EQ(punct[4], ".");
}

TEST(TokenArena, SpansStayValidForTheWholeCall) {
  // Views returned by one tokenize() call must all stay valid together —
  // the arena reserves the full sentence up front, so appending later
  // tokens can never reallocate earlier ones.
  TokenArena arena;
  std::string sentence;
  for (int w = 0; w < 200; ++w) sentence += "Word" + std::string(1, ' ');
  const auto& tokens = arena.tokenize(sentence);
  ASSERT_EQ(tokens.size(), 200u);
  for (const std::string_view t : tokens) EXPECT_EQ(t, "word");
}

TEST(TokenArena, RecycledAcrossCallsAndMatchesReference) {
  TokenArena arena;
  const std::string_view sentences[] = {
      "The QUICK brown fox!", "a", "", "MiXeD caSE words HERE",
      "don't split-hyphens into one"};
  for (const std::string_view s : sentences) {
    const auto ref = tokenize(s, /*keep_punct=*/true);
    const auto& got = arena.tokenize(s, /*keep_punct=*/true);
    ASSERT_EQ(got.size(), ref.size()) << s;
    for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(got[i], ref[i]);
  }
}

TEST(Tokenize, TokenAtBufferBoundaries) {
  // Words flush against both ends of the buffer (no leading/trailing
  // separators) must be emitted whole.
  const auto front_and_back = tokenize("alpha beta");
  ASSERT_EQ(front_and_back.size(), 2u);
  EXPECT_EQ(front_and_back.front(), "alpha");
  EXPECT_EQ(front_and_back.back(), "beta");
  const auto single = tokenize("x");
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], "x");
}

TEST(Tokenize, LocaleIndependentByteClassification) {
  // Bytes >= 0x80 (e.g. UTF-8 continuation bytes) are never alphabetic
  // under the frozen C-locale tables, whatever the process locale says —
  // they split words exactly like digits do.
  const std::string utf8 = "caf\xc3\xa9 bar";
  const auto tokens = tokenize(utf8);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "caf");
  EXPECT_EQ(tokens[1], "bar");
  EXPECT_EQ(count_words("\xc3\xa9\xc2\xa0"), 0u);
}

TEST(ForEachSentence, AgreesWithSplitSentences) {
  const std::string_view text =
      "First one. Second!   Third?No space...   tail fragment";
  const auto ref = split_sentences(text);
  std::vector<std::string_view> got;
  for_each_sentence(text, [&](std::string_view s) { got.push_back(s); });
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) EXPECT_EQ(got[i], ref[i]);
}

}  // namespace
}  // namespace reshape::textproc
