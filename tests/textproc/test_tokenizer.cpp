#include "textproc/tokenizer.hpp"

#include <gtest/gtest.h>

namespace reshape::textproc {
namespace {

TEST(SplitSentences, BasicTerminators) {
  const auto s = split_sentences("One two. Three four! Five?");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], "One two.");
  EXPECT_EQ(s[1], "Three four!");
  EXPECT_EQ(s[2], "Five?");
}

TEST(SplitSentences, TrailingFragmentKept) {
  const auto s = split_sentences("Done. trailing words");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[1], "trailing words");
}

TEST(SplitSentences, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(split_sentences("").empty());
  EXPECT_TRUE(split_sentences("   \n\t ").empty());
  // Consecutive terminators produce no empty sentences.
  const auto s = split_sentences("Hi... there.");
  for (const auto& sentence : s) EXPECT_FALSE(sentence.empty());
}

TEST(Tokenize, LowercasesAndSplitsOnNonAlpha) {
  const auto t = tokenize("The Quick-Brown fox!");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0], "the");
  EXPECT_EQ(t[1], "quick");
  EXPECT_EQ(t[2], "brown");
  EXPECT_EQ(t[3], "fox");
}

TEST(Tokenize, KeepPunctEmitsSingleCharTokens) {
  const auto t = tokenize("stop.", /*keep_punct=*/true);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], "stop");
  EXPECT_EQ(t[1], ".");
}

TEST(Tokenize, NumbersAreSeparators) {
  const auto t = tokenize("a1b2c");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], "a");
}

TEST(CountWords, MatchesTokenCount) {
  EXPECT_EQ(count_words("one two three."), 3u);
  EXPECT_EQ(count_words(""), 0u);
  EXPECT_EQ(count_words("...!!!"), 0u);
  EXPECT_EQ(count_words("hyphen-ated"), 2u);
}

TEST(MeanSentenceLength, Averages) {
  EXPECT_DOUBLE_EQ(mean_sentence_length("One two. Three four five six."),
                   3.0);
  EXPECT_DOUBLE_EQ(mean_sentence_length(""), 0.0);
}

}  // namespace
}  // namespace reshape::textproc
