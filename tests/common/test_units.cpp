#include "common/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace reshape {
namespace {

TEST(Bytes, LiteralsAndConversions) {
  EXPECT_EQ((5_kB).count(), 5000u);
  EXPECT_EQ((3_MB).count(), 3'000'000u);
  EXPECT_EQ((2_GB).count(), 2'000'000'000u);
  EXPECT_DOUBLE_EQ((1536_B).kilobytes(), 1.536);
  EXPECT_DOUBLE_EQ((1_GB).megabytes(), 1000.0);
  EXPECT_DOUBLE_EQ((43_MB).gigabytes(), 0.043);
}

TEST(Bytes, Arithmetic) {
  EXPECT_EQ(1_kB + 500_B, 1500_B);
  EXPECT_EQ(2_MB - 500_kB, Bytes(1'500'000));
  EXPECT_EQ(3_kB * 4, 12_kB);
  EXPECT_EQ(7_kB / 2_kB, 3u);  // integral file-count division
  EXPECT_EQ(7_kB % 2_kB, 1_kB);
  Bytes b = 1_kB;
  b += 1_kB;
  EXPECT_EQ(b, 2_kB);
  b -= 500_B;
  EXPECT_EQ(b, 1500_B);
}

TEST(Bytes, Ordering) {
  EXPECT_LT(1_kB, 1_MB);
  EXPECT_GT(43_MB, 705_kB);
  EXPECT_EQ(1000_kB, 1_MB);
}

TEST(Bytes, HumanReadableString) {
  EXPECT_EQ((512_B).str(), "512 B");
  EXPECT_EQ((1500_B).str(), "1.50 kB");
  EXPECT_EQ((100_MB).str(), "100.00 MB");
  std::ostringstream os;
  os << 2_GB;
  EXPECT_EQ(os.str(), "2.00 GB");
}

TEST(Seconds, LiteralsAndHours) {
  EXPECT_DOUBLE_EQ((90_min).value(), 5400.0);
  EXPECT_DOUBLE_EQ((2_h).value(), 7200.0);
  EXPECT_DOUBLE_EQ((1_h).hours(), 1.0);
  EXPECT_DOUBLE_EQ((0.5_s).value(), 0.5);
}

TEST(Seconds, CeilHoursMatchesPricingGranularity) {
  // The paper bills a flat rate per hour *or partial hour*.
  EXPECT_DOUBLE_EQ(Seconds(1.0).ceil_hours().hours(), 1.0);
  EXPECT_DOUBLE_EQ(Seconds(3600.0).ceil_hours().hours(), 1.0);
  EXPECT_DOUBLE_EQ(Seconds(3601.0).ceil_hours().hours(), 2.0);
  EXPECT_DOUBLE_EQ(Seconds(0.0).ceil_hours().hours(), 0.0);
}

TEST(Seconds, Arithmetic) {
  EXPECT_DOUBLE_EQ((1_h + 30_min).value(), 5400.0);
  EXPECT_DOUBLE_EQ((1_h - 15_min).value(), 3600.0 - 900.0);
  EXPECT_DOUBLE_EQ((2_h / 4.0).value(), 1800.0);
  EXPECT_DOUBLE_EQ(2_h / 1_h, 2.0);
}

TEST(Rate, TimeForVolume) {
  const Rate r = Rate::megabytes_per_second(60.0);
  EXPECT_DOUBLE_EQ(r.mb_per_second(), 60.0);
  EXPECT_NEAR(r.time_for(600_MB).value(), 10.0, 1e-9);
  // §3.1's calculation: a 60 MB/s instance processes ~210 GB in an hour.
  EXPECT_NEAR(r.time_for(216_GB).hours(), 1.0, 1e-9);
}

TEST(Dollars, FlatRateAccumulation) {
  Dollars total;
  total += Dollars(0.085);
  total += Dollars(0.085) * 3.0;
  EXPECT_NEAR(total.amount(), 0.34, 1e-12);
  EXPECT_EQ(Dollars(0.1).str(), "$0.100");
}

}  // namespace
}  // namespace reshape
