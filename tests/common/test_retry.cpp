// Property tests for the retry policy (the data-plane backoff engine).
#include "common/retry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace reshape {
namespace {

TEST(RetryPolicy, BackoffIsMonotoneUpToTheCap) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff = Seconds(0.5);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = Seconds(30.0);
  Seconds prev{0.0};
  bool capped = false;
  for (int retry = 0; retry < 11; ++retry) {
    const Seconds delay = policy.backoff(retry);
    EXPECT_GE(delay, prev) << "retry " << retry;
    EXPECT_LE(delay, policy.max_backoff);
    if (delay == policy.max_backoff) capped = true;
    prev = delay;
  }
  // 0.5 * 2^7 > 30: the schedule must have hit the ceiling.
  EXPECT_TRUE(capped);
  // Once capped, it stays capped.
  EXPECT_EQ(policy.backoff(9), policy.max_backoff);
  EXPECT_EQ(policy.backoff(10), policy.max_backoff);
}

TEST(RetryPolicy, UncappedPrefixIsExactlyExponential) {
  RetryPolicy policy;
  policy.initial_backoff = Seconds(1.0);
  policy.backoff_multiplier = 3.0;
  policy.max_backoff = Seconds(1000.0);
  EXPECT_DOUBLE_EQ(policy.backoff(0).value(), 1.0);
  EXPECT_DOUBLE_EQ(policy.backoff(1).value(), 3.0);
  EXPECT_DOUBLE_EQ(policy.backoff(2).value(), 9.0);
  EXPECT_DOUBLE_EQ(policy.backoff(3).value(), 27.0);
}

TEST(RetryPolicy, JitterStaysWithinTheBand) {
  RetryPolicy policy;
  policy.jitter = 0.2;
  Rng rng(42);
  for (int retry = 0; retry < 6; ++retry) {
    const double base = policy.backoff(retry).value();
    for (int draw = 0; draw < 200; ++draw) {
      const double jittered = policy.jittered_backoff(retry, rng).value();
      EXPECT_GE(jittered, base * (1.0 - policy.jitter));
      EXPECT_LE(jittered, base * (1.0 + policy.jitter));
    }
  }
}

TEST(RetryPolicy, ZeroJitterIsTheBaseSchedule) {
  RetryPolicy policy;
  policy.jitter = 0.0;
  Rng rng(7);
  for (int retry = 0; retry < 5; ++retry) {
    EXPECT_DOUBLE_EQ(policy.jittered_backoff(retry, rng).value(),
                     policy.backoff(retry).value());
  }
}

TEST(RetryPolicy, SameSeedSameJitterSequence) {
  RetryPolicy policy;
  Rng a(99), b(99);
  for (int retry = 0; retry < 8; ++retry) {
    EXPECT_DOUBLE_EQ(policy.jittered_backoff(retry % 4, a).value(),
                     policy.jittered_backoff(retry % 4, b).value());
  }
}

TEST(RetryPolicy, ExpectedAttemptsMatchesTheGeometricSum) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  EXPECT_DOUBLE_EQ(policy.expected_attempts(0.0), 1.0);
  // (1 - p^4) / (1 - p) at p = 0.5: 1 + 0.5 + 0.25 + 0.125.
  EXPECT_NEAR(policy.expected_attempts(0.5), 1.875, 1e-12);
  // Certain failure burns the whole budget.
  EXPECT_NEAR(policy.expected_attempts(1.0),
              static_cast<double>(policy.max_attempts), 1e-9);
  // Monotone in p.
  double prev = 0.0;
  for (double p = 0.0; p < 1.0; p += 0.05) {
    const double attempts = policy.expected_attempts(p);
    EXPECT_GE(attempts, prev);
    prev = attempts;
  }
}

TEST(RetryPolicy, ExhaustionProbabilityIsPToTheBudget) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_DOUBLE_EQ(policy.exhaustion_probability(0.0), 0.0);
  EXPECT_NEAR(policy.exhaustion_probability(0.5), 0.125, 1e-12);
  EXPECT_DOUBLE_EQ(policy.exhaustion_probability(1.0), 1.0);
}

TEST(RetryPolicy, ExpectedBackoffIsZeroOnACleanChannel) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.expected_backoff(0.0).value(), 0.0);
  EXPECT_GT(policy.expected_backoff(0.3).value(), 0.0);
  // More failures, more waiting.
  EXPECT_GT(policy.expected_backoff(0.6).value(),
            policy.expected_backoff(0.3).value());
}

TEST(RetryPolicy, AcquisitionPresetShape) {
  const RetryPolicy policy = RetryPolicy::for_acquisition();
  EXPECT_NO_THROW(policy.validate());
  EXPECT_EQ(policy.max_attempts, 6);
  EXPECT_DOUBLE_EQ(policy.initial_backoff.value(), 15.0);
  EXPECT_DOUBLE_EQ(policy.backoff_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(policy.max_backoff.value(), 240.0);
  // 15 * 2^4 = 240: the last retry sits exactly on the cap.
  EXPECT_DOUBLE_EQ(policy.backoff(4).value(), 240.0);
  EXPECT_DOUBLE_EQ(policy.backoff(5).value(), 240.0);
  // Control-plane boots have no payload to time out.
  EXPECT_DOUBLE_EQ(policy.attempt_timeout.value(), 0.0);
}

TEST(RetryPolicy, AcquisitionPresetClosedForms) {
  const RetryPolicy policy = RetryPolicy::for_acquisition();
  // E[attempts] = (1 - p^6) / (1 - p) at a 50% per-boot failure rate.
  const double p = 0.5;
  const double expected =
      (1.0 - std::pow(p, 6)) / (1.0 - p);  // 1.96875
  EXPECT_NEAR(policy.expected_attempts(p), expected, 1e-12);
  EXPECT_NEAR(policy.expected_attempts(p), 1.96875, 1e-12);
  // Even a coin-flip boot exhausts the budget < 2% of the time: the
  // margin the controller's epoch re-plan leans on before degrading.
  EXPECT_NEAR(policy.exhaustion_probability(p), std::pow(p, 6), 1e-15);
  EXPECT_LT(policy.exhaustion_probability(p), 0.02);
}

TEST(RetryPolicy, AdmissionPresetShape) {
  const RetryPolicy policy = RetryPolicy::for_admission();
  EXPECT_NO_THROW(policy.validate());
  EXPECT_EQ(policy.max_attempts, 4);
  EXPECT_DOUBLE_EQ(policy.initial_backoff.value(), 0.010);
  EXPECT_DOUBLE_EQ(policy.backoff_multiplier, 2.0);
  EXPECT_DOUBLE_EQ(policy.max_backoff.value(), 0.050);
  EXPECT_DOUBLE_EQ(policy.jitter, 0.25);
  // 10ms, 20ms, then the 50ms cap truncates 40ms's doubling successor.
  EXPECT_DOUBLE_EQ(policy.backoff(0).value(), 0.010);
  EXPECT_DOUBLE_EQ(policy.backoff(1).value(), 0.020);
  EXPECT_DOUBLE_EQ(policy.backoff(2).value(), 0.040);
  EXPECT_DOUBLE_EQ(policy.backoff(3).value(), 0.050);
  // An admission rejection is instantaneous; nothing to time out.
  EXPECT_DOUBLE_EQ(policy.attempt_timeout.value(), 0.0);
}

TEST(RetryPolicy, AdmissionPresetClosedForms) {
  const RetryPolicy policy = RetryPolicy::for_admission();
  // At a 50% rejection rate: E[attempts] = (1 - p^4) / (1 - p) = 1.875,
  // and fewer than 7% of clients exhaust the budget (0.5^4 = 6.25%) —
  // the retries themselves shed fast when the server stays saturated.
  const double p = 0.5;
  EXPECT_NEAR(policy.expected_attempts(p), 1.875, 1e-12);
  EXPECT_NEAR(policy.exhaustion_probability(p), 0.0625, 1e-15);
  EXPECT_LT(policy.exhaustion_probability(p), 0.07);
  // Worst-case un-jittered wait per operation is bounded by the full
  // schedule: 10 + 20 + 40 = 70 ms — queue-drain scale, not boot scale.
  const Seconds worst = policy.expected_backoff(1.0);
  EXPECT_NEAR(worst.value(), 0.070, 1e-12);
}

TEST(RetryPolicy, ValidateRejectsBadParameters) {
  RetryPolicy ok;
  EXPECT_NO_THROW(ok.validate());

  RetryPolicy bad = ok;
  bad.max_attempts = 0;
  EXPECT_THROW(bad.validate(), Error);

  bad = ok;
  bad.backoff_multiplier = 0.5;
  EXPECT_THROW(bad.validate(), Error);

  bad = ok;
  bad.jitter = 1.0;
  EXPECT_THROW(bad.validate(), Error);

  bad = ok;
  bad.jitter = -0.1;
  EXPECT_THROW(bad.validate(), Error);

  bad = ok;
  bad.initial_backoff = Seconds(-1.0);
  EXPECT_THROW(bad.validate(), Error);
}

}  // namespace
}  // namespace reshape
