#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace reshape {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(7.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 7.5);
  EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValuesTrackMinMax) {
  RunningStats s;
  s.add(-3.0);
  s.add(2.0);
  s.add(-10.0);
  EXPECT_DOUBLE_EQ(s.min(), -10.0);
  EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(RunningStats, CoefficientOfVariation) {
  RunningStats s;
  for (const double x : {10.0, 10.0, 10.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
  RunningStats t;
  t.add(0.0);
  EXPECT_DOUBLE_EQ(t.cv(), 0.0);  // guarded zero mean
}

TEST(Summarize, MatchesRunningStats) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, 1.2909944487, 1e-9);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, UnsortedInput) {
  const std::vector<double> xs{40.0, 10.0, 30.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);
}

TEST(Percentile, InvalidInputsThrow) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)percentile({}, 50.0), Error);
  EXPECT_THROW((void)percentile(xs, -1.0), Error);
  EXPECT_THROW((void)percentile(xs, 101.0), Error);
}

TEST(Histogram, BinAssignment) {
  Histogram h(0.0, 100.0, 10);
  h.add(0.0);    // bin 0
  h.add(9.999);  // bin 0
  h.add(10.0);   // bin 1
  h.add(95.0);   // bin 9
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(1), 1u);
  EXPECT_EQ(h.count_in_bin(9), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);
  h.add(10.0);  // hi is exclusive
  h.add(50.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 300.0, 30);  // 10-unit bins, like Fig. 1(a)'s 10 kB bins
  EXPECT_DOUBLE_EQ(h.bin_width(), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 30.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 40.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 30.0, 3);
  h.add(5.0);
  h.add(15.0);
  h.add(16.0);
  h.add(25.0);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, AsciiRenderingHasOneRowPerBin) {
  Histogram h(0.0, 20.0, 2);
  h.add(1.0);
  h.add(11.0);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
  Histogram h(0.0, 1.0, 1);
  EXPECT_THROW((void)h.count_in_bin(1), Error);
}

}  // namespace
}  // namespace reshape
