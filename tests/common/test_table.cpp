#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace reshape {
namespace {

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22);
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, MixedTypesViaAdd) {
  Table t({"volume", "time", "cost"});
  t.add(100_MB, Seconds(12.5), Dollars(0.085));
  EXPECT_EQ(t.rows(), 1u);
  const std::string s = t.str();
  EXPECT_NE(s.find("100.00 MB"), std::string::npos);
  EXPECT_NE(s.find("$0.085"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table(std::vector<std::string>{}), Error);
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"k", "v"});
  t.add_row({"plain", "a,b"});
  t.add_row({"quote", "say \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_EQ(csv.substr(0, 4), "k,v\n");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(1387.8, 1), "1387.8");
}

}  // namespace
}  // namespace reshape
