#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace reshape {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 200; ++i) {
    fs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, 64, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForGrainLargerThanRangeIsOneTask) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(10, 1000, [&calls](std::size_t begin, std::size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, ChunkedParallelForEmptyRangeNeverCalls) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 8, [&calls](std::size_t, std::size_t) {
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, ChunkedParallelForZeroGrainThrows) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(4, 0, [](std::size_t, std::size_t) {}),
               Error);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must wait for all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForThrowingTaskDrainsBeforeRethrow) {
  // Regression: an early throw used to abandon queued tasks that still
  // referenced the caller's callable — a use-after-scope once parallel_for
  // returned.  The whole batch must finish before the exception surfaces.
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&completed](std::size_t i) {
                          if (i == 0) throw std::runtime_error("task 0");
                          completed.fetch_add(1);
                        }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ChunkedParallelForThrowingTaskDrainsBeforeRethrow) {
  ThreadPool pool(2);
  std::atomic<int> covered{0};
  EXPECT_THROW(pool.parallel_for(100, 7,
                                 [&covered](std::size_t begin,
                                            std::size_t end) {
                                   if (begin == 0) {
                                     throw std::runtime_error("chunk 0");
                                   }
                                   covered.fetch_add(
                                       static_cast<int>(end - begin));
                                 }),
               std::runtime_error);
  EXPECT_EQ(covered.load(), 93);  // everything except the throwing chunk
}

TEST(ThreadPool, QueueDepthTracksWaitingTasks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(), 0u);

  // Park the lone worker so subsequently submitted tasks must wait.
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  std::promise<void> parked;
  auto blocker = pool.submit([&parked, gate] {
    parked.set_value();
    gate.wait();
  });
  parked.get_future().wait();

  std::vector<std::future<void>> waiting;
  for (int i = 0; i < 3; ++i) {
    waiting.push_back(pool.submit([gate] { gate.wait(); }));
  }
  EXPECT_EQ(pool.queue_depth(), 3u);

  release.set_value();
  blocker.wait();
  for (auto& f : waiting) f.wait();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, ParallelForRethrowsTheFirstExceptionWhenSeveralThrow) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(8, [](std::size_t i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
    FAIL() << "parallel_for must rethrow";
  } catch (const std::runtime_error& e) {
    // The first *submitted* task's exception wins (deterministic choice).
    EXPECT_STREQ(e.what(), "task 0");
  }
}

}  // namespace
}  // namespace reshape
