#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace reshape {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> fs;
  for (int i = 0; i < 200; ++i) {
    fs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : fs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  pool.parallel_for(64, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must wait for all 50
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace reshape
