#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace reshape {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsOrderIndependent) {
  Rng root(7);
  Rng a1 = root.split("corpus");
  root.next_u64();  // consuming the parent must not change child streams
  Rng a2 = Rng(7).split("corpus");
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a1.next_u64(), a2.next_u64());
}

TEST(Rng, NamedSplitsAreIndependent) {
  Rng root(7);
  Rng a = root.split("instances");
  Rng b = root.split("placement");
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, IndexedSplitsAreIndependent) {
  Rng root(9);
  Rng a = root.split(std::uint64_t{0});
  Rng b = root.split(std::uint64_t{1});
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(4);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, UniformBelowCoversRangeWithoutBias) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[rng.uniform_below(10)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 4500);
    EXPECT_LT(c, 5500);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(8);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(10.0, 3.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalIsPositiveWithLongTail) {
  Rng rng(9);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(2.0, 1.0);
    EXPECT_GT(x, 0.0);
    s.add(x);
  }
  // E[X] = exp(mu + sigma^2/2).
  EXPECT_NEAR(s.mean(), std::exp(2.5), std::exp(2.5) * 0.1);
  EXPECT_GT(s.max(), s.mean() * 5.0);  // heavy right tail
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(0.25));
  EXPECT_NEAR(s.mean(), 4.0, 0.15);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(3.0, 2.0), 3.0);
  }
}

TEST(Rng, ZipfFavorsLowRanks) {
  Rng rng(12);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t k = rng.zipf(100, 1.2);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
    ++counts[k];
  }
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(14);
  const auto sample = rng.sample_without_replacement(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(Rng, SampleWholePopulation) {
  Rng rng(15);
  const auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(16);
  EXPECT_THROW(rng.uniform_below(0), Error);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
  EXPECT_THROW(rng.exponential(0.0), Error);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

}  // namespace
}  // namespace reshape
