#include "corpus/corpus.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace reshape::corpus {
namespace {

Corpus small_corpus() {
  std::vector<VirtualFile> files;
  for (std::uint64_t i = 0; i < 10; ++i) {
    files.push_back(VirtualFile{i, Bytes((i + 1) * 1000), 1.0});
  }
  return Corpus(std::move(files));
}

TEST(Corpus, TotalsAndMeans) {
  const Corpus c = small_corpus();
  EXPECT_EQ(c.file_count(), 10u);
  EXPECT_EQ(c.total_volume(), Bytes(55'000));
  EXPECT_EQ(c.mean_file_size(), Bytes(5'500));
  EXPECT_EQ(c.max_file_size(), Bytes(10'000));
  EXPECT_FALSE(c.empty());
}

TEST(Corpus, GenerateDrawsFromDistribution) {
  const FileSizeDistribution d = text_400k_sizes();
  Rng rng(1);
  const Corpus c = Corpus::generate(d, 1000, rng);
  EXPECT_EQ(c.file_count(), 1000u);
  EXPECT_LE(c.max_file_size(), d.max());
  for (const VirtualFile& f : c.files()) {
    EXPECT_DOUBLE_EQ(f.complexity, 1.0);  // spread disabled
  }
}

TEST(Corpus, GenerateWithComplexitySpread) {
  const FileSizeDistribution d = text_400k_sizes();
  Rng rng(2);
  const Corpus c = Corpus::generate(d, 2000, rng, 0.3);
  bool varied = false;
  for (const VirtualFile& f : c.files()) {
    EXPECT_GE(f.complexity, 0.3);
    if (f.complexity != 1.0) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Corpus, SampleVolumeApproximatesTarget) {
  const FileSizeDistribution d = text_400k_sizes();
  Rng rng(3);
  const Corpus c = Corpus::generate(d, 20'000, rng);
  const Corpus sample = c.sample_volume(5_MB, rng);
  EXPECT_GE(sample.total_volume(), 5_MB);
  // Overshoot is at most one file.
  EXPECT_LE(sample.total_volume(), 5_MB + c.max_file_size());
}

TEST(Corpus, SampleIsWithoutReplacement) {
  const Corpus c = small_corpus();
  Rng rng(4);
  const Corpus sample = c.sample_volume(Bytes(30'000), rng);
  std::set<std::uint64_t> ids;
  for (const VirtualFile& f : sample.files()) {
    EXPECT_TRUE(ids.insert(f.id).second) << "duplicate file in sample";
  }
}

TEST(Corpus, SampleLargerThanCorpusThrows) {
  const Corpus c = small_corpus();
  Rng rng(5);
  EXPECT_THROW((void)c.sample_volume(Bytes(1'000'000), rng), Error);
}

TEST(Corpus, TakeVolumePreservesOrder) {
  const Corpus c = small_corpus();
  const Corpus head = c.take_volume(Bytes(6'000));
  ASSERT_GE(head.file_count(), 3u);
  EXPECT_EQ(head.files()[0].id, 0u);
  EXPECT_EQ(head.files()[1].id, 1u);
  EXPECT_GE(head.total_volume(), Bytes(6'000));
}

TEST(Corpus, SplitEvenCoversAllFilesOnce) {
  const FileSizeDistribution d = text_400k_sizes();
  Rng rng(6);
  const Corpus c = Corpus::generate(d, 5000, rng);
  const auto parts = c.split_even(7);
  ASSERT_EQ(parts.size(), 7u);
  std::size_t files = 0;
  Bytes volume{0};
  for (const Corpus& p : parts) {
    files += p.file_count();
    volume += p.total_volume();
  }
  EXPECT_EQ(files, c.file_count());
  EXPECT_EQ(volume, c.total_volume());
}

TEST(Corpus, SplitEvenBalancesVolume) {
  const FileSizeDistribution d = text_400k_sizes();
  Rng rng(7);
  const Corpus c = Corpus::generate(d, 20'000, rng);
  const auto parts = c.split_even(10);
  const double ideal = c.total_volume().as_double() / 10.0;
  for (const Corpus& p : parts) {
    EXPECT_NEAR(p.total_volume().as_double(), ideal, ideal * 0.15);
  }
}

TEST(Corpus, SplitMorePartsThanFilesPadsEmpty) {
  const Corpus c = small_corpus();
  const auto parts = c.split_even(20);
  EXPECT_EQ(parts.size(), 20u);
  EXPECT_THROW((void)c.split_even(0), Error);
}

TEST(Corpus, SizeHistogramMatchesFigOneForm) {
  const Corpus c = small_corpus();
  const Histogram h = c.size_histogram(1_kB, 12_kB);
  EXPECT_EQ(h.bin_count(), 12u);
  // File of size (i+1)*1000 lands in bin i+1 except the 1000-byte one.
  EXPECT_EQ(h.count_in_bin(1), 1u);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Corpus, FractionBelow) {
  const Corpus c = small_corpus();
  EXPECT_DOUBLE_EQ(c.fraction_below(Bytes(5'001)), 0.5);
  EXPECT_DOUBLE_EQ(c.fraction_below(Bytes(100'000)), 1.0);
  EXPECT_DOUBLE_EQ(Corpus().fraction_below(1_kB), 0.0);
}

}  // namespace
}  // namespace reshape::corpus
