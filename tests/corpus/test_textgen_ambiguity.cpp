// Tests for the generator's tag-ambiguity features: noun/verb homographs,
// noun-noun compounds, and the shared-vocabulary held-out constructor.
#include <gtest/gtest.h>

#include <set>

#include "corpus/textgen.hpp"

namespace reshape::corpus {
namespace {

std::size_t shared_forms(const TextGenerator& gen) {
  const auto& nouns = gen.vocabulary(PosTag::kNoun);
  const std::set<std::string> noun_set(nouns.begin(), nouns.end());
  std::size_t shared = 0;
  for (const std::string& v : gen.vocabulary(PosTag::kVerb)) {
    if (noun_set.count(v) > 0) ++shared;
  }
  return shared;
}

TEST(Homographs, EngineeredOverlapExceedsAccidental) {
  // Short suffix-free pseudo-words collide across classes by chance; the
  // noun_verb_overlap knob must add the requested share on top of that.
  TextGenerator::Options with_overlap;
  with_overlap.noun_verb_overlap = 0.2;
  TextGenerator::Options without;
  without.noun_verb_overlap = 0.0;
  const std::size_t overlapped = shared_forms(TextGenerator(with_overlap, Rng(3)));
  const std::size_t accidental = shared_forms(TextGenerator(without, Rng(3)));
  const auto engineered = static_cast<std::size_t>(
      0.2 * static_cast<double>(
                TextGenerator(with_overlap, Rng(3))
                    .vocabulary(PosTag::kVerb)
                    .size()));
  EXPECT_GE(overlapped, engineered);
  EXPECT_GT(overlapped, accidental + engineered / 2);
  // Accidental collisions stay a small minority of the inventory.
  EXPECT_LT(accidental,
            TextGenerator(without, Rng(3)).vocabulary(PosTag::kVerb).size() /
                5);
}

TEST(Homographs, AmbiguousTokensGetContextualGoldTags) {
  // A homograph appears with both NOUN and VERB gold tags across enough
  // sentences — the irreducible ambiguity the tagger must resolve.
  TextGenerator::Options options;
  options.noun_verb_overlap = 0.3;
  TextGenerator gen(options, Rng(5));
  std::map<std::string, std::set<PosTag>> observed;
  for (int i = 0; i < 3000; ++i) {
    for (const TaggedWord& w : gen.sentence()) {
      if (w.tag == PosTag::kNoun || w.tag == PosTag::kVerb) {
        observed[w.text].insert(w.tag);
      }
    }
  }
  std::size_t ambiguous = 0;
  for (const auto& [word, tags] : observed) {
    if (tags.size() > 1) ++ambiguous;
  }
  EXPECT_GT(ambiguous, 5u);
}

TEST(Compounds, NounNounSequencesOccur) {
  TextGenerator gen({}, Rng(6));
  std::size_t compounds = 0;
  for (int i = 0; i < 500; ++i) {
    const TaggedSentence s = gen.sentence();
    for (std::size_t j = 1; j < s.size(); ++j) {
      if (s[j].tag == PosTag::kNoun && s[j - 1].tag == PosTag::kNoun) {
        ++compounds;
      }
    }
  }
  EXPECT_GT(compounds, 20u);
}

TEST(SharedVocabulary, HeldOutCtorMatchesVocabDiffersInSentences) {
  const TextGenerator train({}, Rng(31));
  TextGenerator held({}, Rng(31), Rng(99));
  // Same vocabulary...
  EXPECT_EQ(train.vocabulary(PosTag::kNoun), held.vocabulary(PosTag::kNoun));
  EXPECT_EQ(train.vocabulary(PosTag::kVerb), held.vocabulary(PosTag::kVerb));
  // ...different sentence stream.
  TextGenerator train_again({}, Rng(31));
  const std::string a = TextGenerator::render(train_again.sentence());
  const std::string b = TextGenerator::render(held.sentence());
  EXPECT_NE(a, b);
}

TEST(SharedVocabulary, SameSentenceSeedReplays) {
  TextGenerator a({}, Rng(31), Rng(99));
  TextGenerator b({}, Rng(31), Rng(99));
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(TextGenerator::render(a.sentence()),
              TextGenerator::render(b.sentence()));
  }
}

}  // namespace
}  // namespace reshape::corpus
