#include "corpus/textgen.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace reshape::corpus {
namespace {

TextGenerator make_generator(double complexity = 1.0,
                             std::uint64_t seed = 11) {
  TextGenerator::Options options;
  options.complexity = complexity;
  return TextGenerator(options, Rng(seed));
}

TEST(TextGenerator, SentencesEndWithPunctuation) {
  TextGenerator gen = make_generator();
  for (int i = 0; i < 50; ++i) {
    const TaggedSentence s = gen.sentence();
    ASSERT_GE(s.size(), 3u);
    EXPECT_EQ(s.back().tag, PosTag::kPunct);
    EXPECT_EQ(s.back().text, ".");
  }
}

TEST(TextGenerator, SentencesContainNounAndVerb) {
  TextGenerator gen = make_generator();
  for (int i = 0; i < 50; ++i) {
    const TaggedSentence s = gen.sentence();
    bool has_noun = false, has_verb = false;
    for (const TaggedWord& w : s) {
      has_noun |= (w.tag == PosTag::kNoun || w.tag == PosTag::kPron);
      has_verb |= (w.tag == PosTag::kVerb);
    }
    EXPECT_TRUE(has_noun);
    EXPECT_TRUE(has_verb);
  }
}

TEST(TextGenerator, DeterministicPerSeed) {
  TextGenerator a = make_generator(1.0, 5);
  TextGenerator b = make_generator(1.0, 5);
  for (int i = 0; i < 20; ++i) {
    const TaggedSentence sa = a.sentence();
    const TaggedSentence sb = b.sentence();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t j = 0; j < sa.size(); ++j) {
      EXPECT_EQ(sa[j].text, sb[j].text);
      EXPECT_EQ(sa[j].tag, sb[j].tag);
    }
  }
}

TEST(TextGenerator, ComplexityIncreasesSentenceLength) {
  TextGenerator simple = make_generator(0.7);
  TextGenerator complex_gen = make_generator(2.0);
  RunningStats len_simple, len_complex;
  for (int i = 0; i < 400; ++i) {
    len_simple.add(static_cast<double>(simple.sentence().size()));
    len_complex.add(static_cast<double>(complex_gen.sentence().size()));
  }
  EXPECT_GT(len_complex.mean(), len_simple.mean() * 1.3);
}

TEST(TextGenerator, VocabularySuffixesMatchTagClasses) {
  const TextGenerator gen = make_generator();
  // Adverbs are built with the regular "-ly".
  for (const std::string& w : gen.vocabulary(PosTag::kAdv)) {
    EXPECT_EQ(w.substr(w.size() - 2), "ly");
  }
  EXPECT_THROW((void)gen.vocabulary(PosTag::kDet), Error);
}

TEST(TextGenerator, VocabularyIsDuplicateFree) {
  const TextGenerator gen = make_generator();
  for (const PosTag tag :
       {PosTag::kNoun, PosTag::kVerb, PosTag::kAdj, PosTag::kAdv}) {
    const auto& vocab = gen.vocabulary(tag);
    const std::set<std::string> unique(vocab.begin(), vocab.end());
    EXPECT_EQ(unique.size(), vocab.size());
  }
}

TEST(TextGenerator, RenderCapitalizesAndSpaces) {
  const TaggedSentence s{{"the", PosTag::kDet},
                         {"report", PosTag::kNoun},
                         {"arrived", PosTag::kVerb},
                         {".", PosTag::kPunct}};
  EXPECT_EQ(TextGenerator::render(s), "The report arrived.");
}

TEST(TextGenerator, TextOfSizeMeetsTarget) {
  TextGenerator gen = make_generator();
  const std::string text = gen.text_of_size(10_kB);
  EXPECT_GE(text.size(), (10_kB).count());
  EXPECT_LT(text.size(), (12_kB).count());  // whole sentences, small slack
  // Printable ASCII words and spaces only.
  for (const char c : text) {
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(c)) || c == ' ' ||
                c == '.')
        << "unexpected byte " << static_cast<int>(c);
  }
}

TEST(TextGenerator, TaggedCorpusHasRequestedCount) {
  TextGenerator gen = make_generator();
  const auto corpus = gen.tagged_corpus(25);
  EXPECT_EQ(corpus.size(), 25u);
}

TEST(TextGenerator, ZipfMakesFrequentWordsDominate) {
  TextGenerator gen = make_generator();
  std::unordered_map<std::string, int> freq;
  for (int i = 0; i < 2000; ++i) {
    for (const TaggedWord& w : gen.sentence()) {
      if (w.tag == PosTag::kNoun) ++freq[w.text];
    }
  }
  int max_freq = 0;
  int total = 0;
  for (const auto& [w, n] : freq) {
    max_freq = std::max(max_freq, n);
    total += n;
  }
  // The rank-1 noun should claim a disproportionate share.
  EXPECT_GT(static_cast<double>(max_freq) / total, 0.10);
}

TEST(TextGenerator, InvalidOptionsThrow) {
  TextGenerator::Options options;
  options.complexity = 0.1;
  EXPECT_THROW(TextGenerator(options, Rng(1)), Error);
  TextGenerator::Options no_nouns;
  no_nouns.noun_count = 0;
  EXPECT_THROW(TextGenerator(no_nouns, Rng(1)), Error);
}

TEST(PosTagNames, Render) {
  EXPECT_EQ(to_string(PosTag::kNoun), "NOUN");
  EXPECT_EQ(to_string(PosTag::kPunct), "PUNCT");
}

}  // namespace
}  // namespace reshape::corpus
