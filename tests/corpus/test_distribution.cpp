#include "corpus/distribution.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace reshape::corpus {
namespace {

TEST(FileSizeDistribution, SamplesRespectBounds) {
  const FileSizeDistribution d("test", std::log(10'000.0), 1.0, 1_kB, 1_MB);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const Bytes s = d.sample(rng);
    EXPECT_GE(s, 1_kB);
    EXPECT_LE(s, 1_MB);
  }
}

TEST(FileSizeDistribution, MedianNearExpMu) {
  const FileSizeDistribution d("test", std::log(10'000.0), 0.8, 100_B, 10_MB);
  EXPECT_EQ(d.median().count(), 10'000u);
  Rng rng(2);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(d.sample(rng).as_double());
  EXPECT_NEAR(percentile(xs, 50.0), 10'000.0, 600.0);
}

TEST(Html18milPreset, MatchesFig1aShape) {
  const FileSizeDistribution d = html_18mil_sizes();
  EXPECT_EQ(d.name(), "HTML_18mil");
  EXPECT_EQ(d.max(), 43_MB);  // largest observed file
  Rng rng(3);
  std::size_t below_50k = 0;
  Bytes largest{0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Bytes s = d.sample(rng);
    if (s < 50_kB) ++below_50k;
    largest = std::max(largest, s);
  }
  // "The majority of the files are less than 50 kB" with a long tail.
  EXPECT_GT(static_cast<double>(below_50k) / n, 0.5);
  EXPECT_GT(largest, 1_MB);
  EXPECT_LE(largest, 43_MB);
}

TEST(Text400kPreset, MatchesFig1bShape) {
  const FileSizeDistribution d = text_400k_sizes();
  EXPECT_EQ(d.max(), 705_kB);
  Rng rng(4);
  std::size_t below_5k = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (d.sample(rng) < 5_kB) ++below_5k;
  }
  // "The majority of the files are small (<5 kB)"; §5.2 adds that over
  // 40% are below 1 kB in the real set — our preset keeps the majority
  // clause as the calibration target.
  EXPECT_GT(static_cast<double>(below_5k) / n, 0.5);
}

TEST(FileSizeDistribution, LongTailHasHighMeanToMedianRatio) {
  const FileSizeDistribution d = html_18mil_sizes();
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(d.sample(rng).as_double());
  EXPECT_GT(s.mean(), d.median().as_double() * 1.3);
}

TEST(FileSizeDistribution, InvalidParamsThrow) {
  EXPECT_THROW(FileSizeDistribution("x", 1.0, 0.0, 1_B, 2_B), Error);
  EXPECT_THROW(FileSizeDistribution("x", 1.0, 1.0, 2_B, 2_B), Error);
}

TEST(FileSizeDistribution, DeterministicPerStream) {
  const FileSizeDistribution d = text_400k_sizes();
  Rng a(9), b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(d.sample(a), d.sample(b));
  }
}

}  // namespace
}  // namespace reshape::corpus
