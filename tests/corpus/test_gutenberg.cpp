#include "corpus/gutenberg.hpp"

#include <gtest/gtest.h>

#include "textproc/tokenizer.hpp"

namespace reshape::corpus {
namespace {

TEST(Gutenberg, NovelsReachTargetLength) {
  const Document d = make_novel("Test", 5000, 1.0, Rng(1));
  EXPECT_GE(d.word_count, 5000u);
  EXPECT_LT(d.word_count, 5300u);  // overshoot bounded by one sentence
  EXPECT_FALSE(d.text.empty());
}

TEST(Gutenberg, StandInsMatchPaperWordCounts) {
  // §5.2: Dubliners 67,496 words vs Agnes Grey 67,755 — within 300 words.
  const Document dub = dubliners_like(Rng(2));
  const Document agnes = agnes_grey_like(Rng(2));
  EXPECT_GE(dub.word_count, 67'496u);
  EXPECT_GE(agnes.word_count, 67'755u);
  const double rel_gap =
      std::abs(static_cast<double>(dub.word_count) -
               static_cast<double>(agnes.word_count)) /
      static_cast<double>(agnes.word_count);
  EXPECT_LT(rel_gap, 0.01);
}

TEST(Gutenberg, ComplexNovelHasLongerSentences) {
  const Document dub = dubliners_like(Rng(3));
  const Document agnes = agnes_grey_like(Rng(3));
  const double dub_len = textproc::mean_sentence_length(dub.text);
  const double agnes_len = textproc::mean_sentence_length(agnes.text);
  EXPECT_GT(dub_len, agnes_len * 1.3);
}

TEST(Gutenberg, DeterministicPerSeed) {
  const Document a = make_novel("N", 1000, 1.2, Rng(9));
  const Document b = make_novel("N", 1000, 1.2, Rng(9));
  EXPECT_EQ(a.text, b.text);
  const Document c = make_novel("N", 1000, 1.2, Rng(10));
  EXPECT_NE(a.text, c.text);
}

TEST(Gutenberg, TitleSeedsDistinctStreams) {
  const Document a = make_novel("Alpha", 1000, 1.0, Rng(9));
  const Document b = make_novel("Beta", 1000, 1.0, Rng(9));
  EXPECT_NE(a.text, b.text);
}

}  // namespace
}  // namespace reshape::corpus
