// Tests for complexity clustering, contiguous sampling and
// complexity-aware corpus statistics — the machinery behind the Eq. (4)
// random-sampling refit.
#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "corpus/corpus.hpp"
#include "corpus/distribution.hpp"

namespace reshape::corpus {
namespace {

Corpus clustered_corpus(std::size_t files = 50'000, double spread = 0.25,
                        std::size_t cluster = 2000, std::uint64_t seed = 5) {
  Rng rng(seed);
  return Corpus::generate(text_400k_sizes(), files, rng, spread, cluster);
}

TEST(ComplexityClusters, FilesWithinClusterShareComplexity) {
  const Corpus c = clustered_corpus();
  const auto& files = c.files();
  for (std::size_t i = 1; i < 2000; ++i) {
    EXPECT_DOUBLE_EQ(files[i].complexity, files[0].complexity);
  }
  // Different clusters almost surely differ.
  EXPECT_NE(files[0].complexity, files[2000].complexity);
}

TEST(ComplexityClusters, ClusterOfOneIsIndependentDraws) {
  Rng rng(6);
  const Corpus c =
      Corpus::generate(text_400k_sizes(), 1000, rng, 0.2, 1);
  std::set<double> values;
  for (const VirtualFile& f : c.files()) values.insert(f.complexity);
  EXPECT_GT(values.size(), 900u);
}

TEST(ComplexityClusters, CorpusMeanStaysNearOne) {
  const Corpus c = clustered_corpus(100'000);
  EXPECT_NEAR(c.mean_complexity(), 1.0, 0.05);
}

TEST(ComplexityClusters, InvalidClusterThrows) {
  Rng rng(7);
  EXPECT_THROW(
      (void)Corpus::generate(text_400k_sizes(), 10, rng, 0.2, 0), Error);
}

TEST(MeanComplexity, VolumeWeighted) {
  std::vector<VirtualFile> files;
  files.push_back(VirtualFile{0, Bytes(900), 2.0});
  files.push_back(VirtualFile{1, Bytes(100), 1.0});
  const Corpus c{std::move(files)};
  EXPECT_NEAR(c.mean_complexity(), 1.9, 1e-12);
  EXPECT_DOUBLE_EQ(Corpus().mean_complexity(), 1.0);
}

TEST(SampleContiguous, PreservesOrderAndVolume) {
  const Corpus c = clustered_corpus(20'000);
  Rng rng(8);
  const Corpus sample = c.sample_contiguous(5_MB, rng);
  EXPECT_GE(sample.total_volume(), 5_MB);
  EXPECT_LE(sample.total_volume(), 5_MB + c.max_file_size());
  // Contiguity: ids are consecutive (modulo wrap-around).
  std::size_t breaks = 0;
  for (std::size_t i = 1; i < sample.file_count(); ++i) {
    if (sample.files()[i].id != sample.files()[i - 1].id + 1) ++breaks;
  }
  EXPECT_LE(breaks, 1u);  // at most one wrap
}

TEST(SampleContiguous, CapturesClusterLevelComplexitySpread) {
  // The §5.2 point: contiguous samples inherit their source's complexity,
  // so sample means vary far more than shuffled samples of equal size.
  const Corpus c = clustered_corpus(200'000, 0.25, 2000, 11);
  Rng rng(9);
  RunningStats contiguous_means, shuffled_means;
  for (int s = 0; s < 40; ++s) {
    contiguous_means.add(c.sample_contiguous(5_MB, rng).mean_complexity());
    shuffled_means.add(c.sample_volume(5_MB, rng).mean_complexity());
  }
  EXPECT_GT(contiguous_means.stddev(), 4.0 * shuffled_means.stddev());
}

TEST(SampleContiguous, WrapsAroundTheTail) {
  std::vector<VirtualFile> files;
  for (std::uint64_t i = 0; i < 10; ++i) {
    files.push_back(VirtualFile{i, Bytes(1000), 1.0});
  }
  const Corpus c{std::move(files)};
  // Force a start near the end by trying seeds until the sample wraps.
  bool wrapped = false;
  for (std::uint64_t seed = 0; seed < 50 && !wrapped; ++seed) {
    Rng rng(seed);
    const Corpus s = c.sample_contiguous(Bytes(5000), rng);
    EXPECT_EQ(s.file_count(), 5u);
    if (s.files().front().id > s.files().back().id) wrapped = true;
  }
  EXPECT_TRUE(wrapped);
}

TEST(SampleContiguous, InvalidInputsThrow) {
  const Corpus empty;
  Rng rng(1);
  EXPECT_THROW((void)empty.sample_contiguous(1_kB, rng), Error);
  const Corpus c = clustered_corpus(100);
  EXPECT_THROW((void)c.sample_contiguous(1_GB, rng), Error);
}

TEST(SampleContiguous, DeterministicPerStream) {
  const Corpus c = clustered_corpus(10'000);
  Rng a(3), b(3);
  const Corpus s1 = c.sample_contiguous(1_MB, a);
  const Corpus s2 = c.sample_contiguous(1_MB, b);
  ASSERT_EQ(s1.file_count(), s2.file_count());
  EXPECT_EQ(s1.files().front().id, s2.files().front().id);
}

}  // namespace
}  // namespace reshape::corpus
