// End-to-end integration tests: the complete reshape -> probe -> model ->
// plan -> execute pipeline, plus cross-module invariants the unit tests
// cannot see.
#include <gtest/gtest.h>

#include "cloud/app_profile.hpp"
#include "cloud/provider.hpp"
#include "cloud/workload.hpp"
#include "common/stats.hpp"
#include "corpus/corpus.hpp"
#include "corpus/distribution.hpp"
#include "model/predictor.hpp"
#include "provision/executor.hpp"
#include "provision/planner.hpp"
#include "reshape/merge.hpp"
#include "reshape/probe.hpp"
#include "sim/simulation.hpp"

namespace reshape {
namespace {

/// Fits a grep predictor from probes on a screened instance.
model::Predictor fit_grep_model(cloud::CloudProvider& ec2,
                                cloud::InstanceId id, Rng& noise) {
  std::vector<double> xs, ys;
  const cloud::AppCostProfile grep = cloud::grep_profile();
  for (const Bytes v : {500_MB, 1_GB, 2_GB, 5_GB}) {
    RunningStats reps;
    for (int r = 0; r < 5; ++r) {
      reps.add(cloud::run_time(grep, cloud::DataLayout::reshaped(v, 100_MB),
                               ec2.instance(id), cloud::LocalStorage{}, noise)
                   .value());
    }
    xs.push_back(v.as_double());
    ys.push_back(reps.mean());
  }
  return model::Predictor::fit(xs, ys);
}

const cloud::AvailabilityZone kZone{cloud::Region::kUsEast, 0};

TEST(Pipeline, EndToEndGrepCampaign) {
  const Rng root(9001);
  Rng corpus_rng = root.split("corpus");
  const corpus::Corpus data = corpus::Corpus::generate(
      corpus::html_18mil_sizes(), 100'000, corpus_rng);

  // Reshape.
  const pack::MergedCorpus merged = pack::merge_to_unit(data, 100_MB);
  EXPECT_LT(merged.block_count() * 50, data.file_count());
  EXPECT_EQ(merged.total_volume(), data.total_volume());

  // Probe and model.
  sim::Simulation sim;
  cloud::CloudProvider ec2(sim, root.split("cloud"), cloud::ProviderConfig{});
  const auto acq = ec2.acquire_screened(cloud::InstanceType::kSmall, kZone);
  Rng noise = root.split("noise");
  const model::Predictor predictor = fit_grep_model(ec2, acq.id, noise);
  EXPECT_GT(predictor.r2(), 0.999);

  // Plan with 50% slack over the single-instance prediction and execute
  // on a same-quality fleet: the deadline must hold.
  const Seconds deadline(
      predictor.predict(data.total_volume()).value() * 0.75);
  provision::StaticPlanner planner(predictor);
  provision::PlanOptions options;
  options.deadline = deadline;
  options.strategy = provision::PackingStrategy::kUniform;
  const provision::ExecutionPlan plan = planner.plan(data, options);
  EXPECT_GE(plan.instance_count(), 2u);

  sim::Simulation exec_sim;
  cloud::ProviderConfig fleet_config;
  fleet_config.mixture = cloud::uniform_fast_mixture();
  cloud::CloudProvider fleet(exec_sim, root.split("fleet"), fleet_config);
  provision::ExecutionOptions exec;
  exec.reshaped_unit = 100_MB;
  exec.data_on_ebs = false;  // pre-staged local data, like the probes
  exec.local_staging_time = Seconds(0.0);
  Rng run_noise = root.split("runs");
  const provision::ExecutionReport report = provision::execute_plan(
      fleet, plan, cloud::grep_profile(), exec, run_noise);
  EXPECT_EQ(report.missed, 0u)
      << "uniform fleet at 25% slack must meet the deadline";
  EXPECT_EQ(report.instance_count(), plan.instance_count());
}

TEST(Pipeline, ReshapingWinsForGrepNotForPos) {
  // The paper's asymmetric conclusion in one test: merging helps the
  // I/O-bound scanner and hurts the memory-bound tagger.
  const Rng root(9002);
  sim::Simulation sim;
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  cloud::CloudProvider ec2(sim, root.split("cloud"), config);
  const cloud::InstanceId id = ec2.launch(cloud::InstanceType::kSmall, kZone);
  sim.run();

  const cloud::Instance& inst = ec2.instance(id);
  const cloud::DataLayout original =
      cloud::DataLayout::original(100_MB, 25'000, 4_kB);
  const cloud::DataLayout reshaped =
      cloud::DataLayout::reshaped(100_MB, 10_MB);

  const double grep_orig = cloud::expected_run_time(
      cloud::grep_profile(), original, inst, cloud::LocalStorage{}).value();
  const double grep_merged = cloud::expected_run_time(
      cloud::grep_profile(), reshaped, inst, cloud::LocalStorage{}).value();
  EXPECT_GT(grep_orig / grep_merged, 3.0);

  const double pos_orig = cloud::expected_run_time(
      cloud::pos_profile(), original, inst, cloud::LocalStorage{}).value();
  const double pos_merged = cloud::expected_run_time(
      cloud::pos_profile(), reshaped, inst, cloud::LocalStorage{}).value();
  EXPECT_LT(pos_orig, pos_merged);
}

TEST(Pipeline, ProbeSetsFeedThePlannerConsistently) {
  // Probe construction -> model -> plan must round-trip: planning for the
  // predicted whole-corpus time with one instance yields one assignment
  // whose predicted time matches.
  const Rng root(9003);
  Rng corpus_rng = root.split("corpus");
  const corpus::Corpus data = corpus::Corpus::generate(
      corpus::text_400k_sizes(), 30'000, corpus_rng);
  const std::vector<std::uint64_t> multiples{2, 4};
  const pack::ProbeSet probes =
      pack::build_probe_set(data, 2_MB, 1_MB, multiples);
  EXPECT_EQ(probes.probes.size(), 4u);

  // A synthetic exact model: t = 2 + 1e-7 * bytes.
  std::vector<double> xs{1e6, 1e7, 1e8};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.0 + 1e-7 * x);
  provision::StaticPlanner planner(model::Predictor::fit(xs, ys));
  provision::PlanOptions options;
  options.deadline =
      Seconds(2.0 + 1e-7 * data.total_volume().as_double() + 1.0);
  const provision::ExecutionPlan plan = planner.plan(data, options);
  EXPECT_EQ(plan.instance_count(), 1u);
  EXPECT_NEAR(plan.predicted_makespan.value(),
              2.0 + 1e-7 * data.total_volume().as_double(), 0.5);
}

TEST(Pipeline, StrategyOrderingHoldsAcrossSeeds) {
  // Property over seeds: uniform never needs more instances than
  // adjusted, and uniform's predicted makespan never exceeds first-fit's.
  std::vector<double> xs{1e6, 1e8};
  std::vector<double> ys{0.3 + 0.865e-4 * 1e6, 0.3 + 0.865e-4 * 1e8};
  const provision::StaticPlanner planner(model::Predictor::fit(xs, ys));
  model::RelativeResiduals residuals;
  residuals.stddev = 0.1;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    const corpus::Corpus data =
        corpus::Corpus::generate(corpus::text_400k_sizes(), 40'000, rng)
            .take_volume(150_MB);
    provision::PlanOptions ff;
    ff.deadline = 1_h;
    ff.strategy = provision::PackingStrategy::kFirstFit;
    provision::PlanOptions uni = ff;
    uni.strategy = provision::PackingStrategy::kUniform;
    provision::PlanOptions adj = ff;
    adj.strategy = provision::PackingStrategy::kAdjusted;
    adj.residuals = residuals;

    const auto plan_ff = planner.plan(data, ff);
    const auto plan_uni = planner.plan(data, uni);
    const auto plan_adj = planner.plan(data, adj);
    EXPECT_LE(plan_uni.predicted_makespan, plan_ff.predicted_makespan)
        << "seed " << seed;
    EXPECT_GE(plan_adj.instance_count(), plan_uni.instance_count())
        << "seed " << seed;
    EXPECT_EQ(plan_uni.total_volume(), data.total_volume());
  }
}

TEST(Pipeline, BillingNeverChargesMoreThanCeilPerInstance) {
  // Across a whole execution, cost divided by instances is at most the
  // ceil of the longest run in hours times the rate.
  const Rng root(9004);
  Rng corpus_rng = root.split("corpus");
  const corpus::Corpus data =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 30'000, corpus_rng)
          .take_volume(100_MB);
  std::vector<double> xs{1e6, 1e8};
  std::vector<double> ys{0.3 + 0.865e-4 * 1e6, 0.3 + 0.865e-4 * 1e8};
  provision::StaticPlanner planner(model::Predictor::fit(xs, ys));
  provision::PlanOptions options;
  options.deadline = 1_h;
  const provision::ExecutionPlan plan = planner.plan(data, options);

  sim::Simulation sim;
  cloud::CloudProvider fleet(sim, root.split("fleet"),
                             cloud::ProviderConfig{});
  Rng noise = root.split("noise");
  const provision::ExecutionReport report = provision::execute_plan(
      fleet, plan, cloud::pos_profile(), provision::ExecutionOptions{},
      noise);
  const double worst_hours = std::ceil(report.makespan.hours());
  EXPECT_LE(report.cost.amount(),
            static_cast<double>(report.instance_count()) * worst_hours *
                0.085 + 1e-9);
  EXPECT_GE(report.cost.amount(),
            static_cast<double>(report.instance_count()) * 0.085 - 1e-9);
}

TEST(Pipeline, WholePipelineIsDeterministic) {
  auto run_once = [] {
    const Rng root(9005);
    Rng corpus_rng = root.split("corpus");
    const corpus::Corpus data =
        corpus::Corpus::generate(corpus::text_400k_sizes(), 20'000,
                                 corpus_rng)
            .take_volume(50_MB);
    std::vector<double> xs{1e6, 1e8};
    std::vector<double> ys{0.3 + 0.865e-4 * 1e6, 0.3 + 0.865e-4 * 1e8};
    provision::StaticPlanner planner(model::Predictor::fit(xs, ys));
    provision::PlanOptions options;
    options.deadline = 30_min;
    const provision::ExecutionPlan plan = planner.plan(data, options);
    sim::Simulation sim;
    cloud::CloudProvider fleet(sim, root.split("fleet"),
                               cloud::ProviderConfig{});
    Rng noise = root.split("noise");
    return provision::execute_plan(fleet, plan, cloud::pos_profile(),
                                   provision::ExecutionOptions{}, noise);
  };
  const provision::ExecutionReport a = run_once();
  const provision::ExecutionReport b = run_once();
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.missed, b.missed);
  EXPECT_EQ(a.cost, b.cost);
}

}  // namespace
}  // namespace reshape
