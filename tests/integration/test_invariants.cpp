// Cross-module monotonicity and dominance invariants, swept with
// parameterized tests.  These pin down the *shapes* the paper's figures
// rely on: more volume never runs faster, bigger grep units never run
// slower (up to the plateau), tighter deadlines never need fewer
// instances, higher spot bids never get less compute, and less-segmented
// output never retrieves slower.
#include <gtest/gtest.h>

#include "cloud/app_profile.hpp"
#include "cloud/workload.hpp"
#include "common/rng.hpp"
#include "corpus/corpus.hpp"
#include "corpus/distribution.hpp"
#include "cloud/spot.hpp"
#include "model/predictor.hpp"
#include "provision/planner.hpp"
#include "provision/retrieval.hpp"
#include "reshape/merge.hpp"

namespace reshape {
namespace {

cloud::Instance reference_instance() {
  cloud::InstanceQuality q;
  q.io_rate = Rate::megabytes_per_second(65.0);
  return cloud::Instance(cloud::InstanceId{1}, cloud::InstanceType::kSmall,
                         cloud::AvailabilityZone{}, q, Seconds(0.0));
}

// ---------------------------------------------------------------- workload

class VolumeMonotone : public ::testing::TestWithParam<const char*> {};

TEST_P(VolumeMonotone, MoreVolumeNeverRunsFaster) {
  const cloud::AppCostProfile app = std::string(GetParam()) == "grep"
                                        ? cloud::grep_profile()
                                        : cloud::pos_profile();
  const cloud::Instance inst = reference_instance();
  double prev = 0.0;
  for (std::uint64_t mb = 1; mb <= 4096; mb *= 4) {
    const double t = cloud::expected_run_time(
        app, cloud::DataLayout::reshaped(Bytes(mb * 1000 * 1000), 1_MB),
        inst, cloud::LocalStorage{}).value();
    EXPECT_GE(t, prev) << GetParam() << " at " << mb << " MB";
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Apps, VolumeMonotone,
                         ::testing::Values("grep", "pos"));

TEST(UnitMonotone, GrepNeverSlowsWithBiggerUnits) {
  const cloud::AppCostProfile grep = cloud::grep_profile();
  const cloud::Instance inst = reference_instance();
  double prev = 1e300;
  for (const Bytes unit : {10_kB, 100_kB, 1_MB, 10_MB, 100_MB, 1_GB}) {
    const double t = cloud::expected_run_time(
        grep, cloud::DataLayout::reshaped(2_GB, unit), inst,
        cloud::LocalStorage{}).value();
    EXPECT_LE(t, prev + 1e-9) << unit.str();
    prev = t;
  }
}

TEST(UnitMonotone, PosNeverSpeedsUpWithBiggerUnitsBeyondComfort) {
  const cloud::AppCostProfile pos = cloud::pos_profile();
  const cloud::Instance inst = reference_instance();
  double prev = 0.0;
  for (const Bytes unit : {64_kB, 128_kB, 512_kB, 2_MB, 8_MB}) {
    const double t = cloud::expected_run_time(
        pos, cloud::DataLayout::reshaped(10_MB, unit), inst,
        cloud::LocalStorage{}).value();
    EXPECT_GE(t, prev - 1e-9) << unit.str();
    prev = t;
  }
}

// ----------------------------------------------------------------- planner

class DeadlineSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeadlineSweep, TighterDeadlinesNeverNeedFewerInstances) {
  Rng rng(GetParam());
  const corpus::Corpus data =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 30'000, rng)
          .take_volume(100_MB);
  std::vector<double> xs{1e6, 1e8};
  std::vector<double> ys{0.3 + 0.865e-4 * 1e6, 0.3 + 0.865e-4 * 1e8};
  const provision::StaticPlanner planner(model::Predictor::fit(xs, ys));
  std::size_t prev = 1u << 30;
  for (const double d : {600.0, 1200.0, 1800.0, 3600.0, 7200.0}) {
    provision::PlanOptions options;
    options.deadline = Seconds(d);
    const std::size_t count = planner.plan(data, options).instance_count();
    EXPECT_LE(count, prev) << "deadline " << d;
    prev = count;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlineSweep,
                         ::testing::Values(11, 22, 33, 44));

TEST(PlannerDominance, PredictedCostNeverBelowLowerBound) {
  // Cost >= rate * ceil(total predicted work / 1h) for deadlines >= 1h.
  Rng rng(55);
  const corpus::Corpus data =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 30'000, rng)
          .take_volume(120_MB);
  std::vector<double> xs{1e6, 1e8};
  std::vector<double> ys{0.3 + 0.865e-4 * 1e6, 0.3 + 0.865e-4 * 1e8};
  const model::Predictor predictor = model::Predictor::fit(xs, ys);
  const provision::StaticPlanner planner(predictor);
  provision::PlanOptions options;
  options.deadline = 1_h;
  const provision::ExecutionPlan plan = planner.plan(data, options);
  const double total_work =
      predictor.predict(data.total_volume()).value() / 3600.0;
  EXPECT_GE(plan.predicted_cost.amount(),
            std::ceil(total_work) * 0.085 - 1e-9);
}

// -------------------------------------------------------------------- spot

class BidSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BidSweep, HigherBidsNeverGetLessCompute) {
  const cloud::SpotMarket market(Rng(GetParam()).split("spot"),
                                 cloud::SpotMarketModel{});
  const Seconds horizon(200.0 * 3600.0);
  double prev_compute = 0.0;
  for (const double bid : {0.01, 0.02, 0.03, 0.05, 0.10, 0.30}) {
    const cloud::SpotOutcome out =
        cloud::simulate_bid(market, Dollars(bid), horizon);
    EXPECT_GE(out.compute.value(), prev_compute) << "bid " << bid;
    prev_compute = out.compute.value();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidSweep, ::testing::Values(1, 2, 3));

TEST(SpotEconomics, EffectiveRateNeverAboveBid) {
  const cloud::SpotMarket market(Rng(5).split("spot"),
                                 cloud::SpotMarketModel{});
  for (const double bid : {0.03, 0.05, 0.08}) {
    const cloud::SpotOutcome out =
        cloud::simulate_bid(market, Dollars(bid), Seconds(500.0 * 3600.0));
    if (out.compute.value() > 0.0) {
      EXPECT_LE(out.cost.amount() / out.compute.hours(), bid + 1e-9);
    }
  }
}

// --------------------------------------------------------------- retrieval

TEST(RetrievalMonotone, BiggerBlocksNeverRetrieveSlower) {
  const cloud::S3Model s3;
  double prev = 1e300;
  for (const Bytes unit : {1_MB, 10_MB, 100_MB, 1_GB}) {
    const auto seg = provision::OutputSegmentation::per_block(1_GB, unit, 0.5);
    const double t =
        provision::expected_retrieval_time(seg, s3).total.value();
    EXPECT_LE(t, prev + 1e-9) << unit.str();
    prev = t;
  }
}

// ------------------------------------------------------------ reshaping

class MergeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MergeSweep, BiggerUnitsNeverProduceMoreBlocks) {
  Rng rng(GetParam());
  const corpus::Corpus data =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 5000, rng);
  std::size_t prev = 1u << 30;
  for (const Bytes unit : {1_MB, 2_MB, 5_MB, 20_MB, 100_MB}) {
    const std::size_t blocks = pack::merge_to_unit(data, unit).block_count();
    EXPECT_LE(blocks, prev) << unit.str();
    prev = blocks;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeSweep, ::testing::Values(7, 8, 9));

}  // namespace
}  // namespace reshape
