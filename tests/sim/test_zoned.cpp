// Zone-sharded execution replay suite.
//
// Shards share no mutable state, so the parallel schedule must be
// byte-identical to the sequential one.  These tests run the same seeded
// per-shard workloads both ways and require identical fire traces —
// they carry the tsan-smoke label, so a -DRESHAPE_SANITIZE=thread build
// sweeps the parallel path for data races.

#include "sim/zoned.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"

namespace reshape::sim {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Per-shard self-feeding churn; the trace records (id, time) pairs.
struct ShardDriver {
  Simulation& sim;
  std::uint64_t rng;
  std::uint64_t remaining;
  std::uint64_t next_id = 0;
  std::vector<std::pair<std::uint64_t, double>> trace;

  void spawn() {
    if (remaining == 0) return;
    --remaining;
    const std::uint64_t id = ++next_id;
    const std::uint64_t r = splitmix(rng);
    const double delay = static_cast<double>(r % 10000u) * 1e-3;
    sim.schedule_in(Seconds(delay), [this, id](Simulation& s) {
      trace.emplace_back(id, s.now().value());
      spawn();
    });
  }
};

using Traces = std::vector<std::vector<std::pair<std::uint64_t, double>>>;

Traces run_campaign(std::size_t shards, std::uint64_t per_shard,
                    ThreadPool* pool) {
  ZonedSimulation zoned(shards);
  std::vector<std::unique_ptr<ShardDriver>> drivers;
  for (std::size_t i = 0; i < shards; ++i) {
    drivers.push_back(std::make_unique<ShardDriver>(
        ShardDriver{zoned.shard(i), 1000 + i, per_shard, 0, {}}));
    for (int j = 0; j < 16; ++j) drivers.back()->spawn();
  }
  const std::size_t fired = pool != nullptr ? zoned.run_parallel(*pool)
                                            : zoned.run_sequential();
  Traces traces;
  std::size_t total = 0;
  for (const auto& d : drivers) {
    total += d->trace.size();
    traces.push_back(d->trace);
  }
  EXPECT_EQ(fired, total);
  return traces;
}

TEST(ZonedSimulation, ParallelReplayIsByteIdenticalToSequential) {
  ThreadPool pool;
  const Traces seq = run_campaign(8, 20000, nullptr);
  const Traces par = run_campaign(8, 20000, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i], par[i]) << "shard " << i << " diverged";
  }
}

TEST(ZonedSimulation, ShardForIsStable) {
  ZonedSimulation zoned(4);
  for (std::uint64_t key = 0; key < 64; ++key) {
    EXPECT_EQ(zoned.shard_for(key), key % 4);
    EXPECT_LT(zoned.shard_for(key), zoned.shard_count());
  }
}

TEST(ZonedSimulation, RunWindowsSynchronizesShardClocks) {
  ZonedSimulation zoned(3);
  for (std::size_t i = 0; i < 3; ++i) {
    // Staggered work so shards would naturally drift apart.
    zoned.shard(i).schedule_at(Seconds(static_cast<double>(i) * 3.0 + 1.0),
                               [](Simulation&) {});
  }
  ThreadPool pool;
  std::vector<double> horizons;
  const std::size_t fired = zoned.run_windows(
      Seconds(2.0), &pool, [&](Seconds horizon) {
        horizons.push_back(horizon.value());
        for (std::size_t i = 0; i < 3; ++i) {
          // Every shard's clock rests exactly at the window horizon.
          EXPECT_DOUBLE_EQ(zoned.shard(i).now().value(), horizon.value());
        }
      });
  EXPECT_EQ(fired, 3u);
  EXPECT_FALSE(horizons.empty());
}

}  // namespace
}  // namespace reshape::sim
