#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace reshape::sim {
namespace {

TEST(Simulation, ClockStartsAtZero) {
  Simulation s;
  EXPECT_DOUBLE_EQ(s.now().value(), 0.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(Seconds(10.0), [&order](Simulation&) { order.push_back(2); });
  s.schedule_at(Seconds(5.0), [&order](Simulation&) { order.push_back(1); });
  s.schedule_at(Seconds(20.0), [&order](Simulation&) { order.push_back(3); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now().value(), 20.0);
}

TEST(Simulation, EqualTimestampsFireInScheduleOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(Seconds(1.0), [&order, i](Simulation&) { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation s;
  double fired_at = -1.0;
  s.schedule_at(Seconds(10.0), [&fired_at](Simulation& sim) {
    sim.schedule_in(Seconds(5.0), [&fired_at](Simulation& inner) {
      fired_at = inner.now().value();
    });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  const EventHandle h =
      s.schedule_at(Seconds(1.0), [&fired](Simulation&) { fired = true; });
  EXPECT_TRUE(s.cancel(h));
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation s;
  const EventHandle h = s.schedule_at(Seconds(1.0), [](Simulation&) {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
  EXPECT_FALSE(s.cancel(EventHandle{}));
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation s;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.schedule_at(Seconds(t), [&fired](Simulation& sim) {
      fired.push_back(sim.now().value());
    });
  }
  EXPECT_EQ(s.run_until(Seconds(2.5)), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.now().value(), 2.5);
  EXPECT_EQ(s.pending(), 2u);
}

TEST(Simulation, RunUntilAdvancesIdleClock) {
  Simulation s;
  s.run_until(Seconds(100.0));
  EXPECT_DOUBLE_EQ(s.now().value(), 100.0);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation s;
  int chain = 0;
  Simulation::Callback next = [&](Simulation& sim) {
    if (++chain < 10) {
      sim.schedule_in(Seconds(1.0), [&](Simulation& inner) {
        if (++chain < 10) inner.schedule_in(Seconds(1.0), next);
      });
    }
  };
  s.schedule_at(Seconds(0.0), next);
  s.run();
  EXPECT_GE(chain, 2);
}

TEST(Simulation, PastSchedulingThrows) {
  Simulation s;
  s.schedule_at(Seconds(5.0), [](Simulation&) {});
  s.run();
  EXPECT_THROW(s.schedule_at(Seconds(1.0), [](Simulation&) {}), Error);
  EXPECT_THROW(s.schedule_in(Seconds(-1.0), [](Simulation&) {}), Error);
}

TEST(Simulation, StepFiresExactlyOne) {
  Simulation s;
  int count = 0;
  s.schedule_at(Seconds(1.0), [&count](Simulation&) { ++count; });
  s.schedule_at(Seconds(2.0), [&count](Simulation&) { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, CancelledEventSkippedByStep) {
  Simulation s;
  bool second = false;
  const EventHandle h = s.schedule_at(Seconds(1.0), [](Simulation&) {});
  s.schedule_at(Seconds(2.0), [&second](Simulation&) { second = true; });
  s.cancel(h);
  EXPECT_TRUE(s.step());  // skips cancelled, fires the 2.0s event
  EXPECT_TRUE(second);
}

}  // namespace
}  // namespace reshape::sim
