#include "sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "sim/simulation_reference.hpp"

namespace reshape::sim {
namespace {

constexpr Simulation::Engine kBothEngines[] = {
    Simulation::Engine::kLadder, Simulation::Engine::kReferenceHeap};

TEST(Simulation, ClockStartsAtZero) {
  Simulation s;
  EXPECT_DOUBLE_EQ(s.now().value(), 0.0);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation s;
  std::vector<int> order;
  s.schedule_at(Seconds(10.0), [&order](Simulation&) { order.push_back(2); });
  s.schedule_at(Seconds(5.0), [&order](Simulation&) { order.push_back(1); });
  s.schedule_at(Seconds(20.0), [&order](Simulation&) { order.push_back(3); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now().value(), 20.0);
}

TEST(Simulation, EqualTimestampsFireInScheduleOrder) {
  Simulation s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(Seconds(1.0), [&order, i](Simulation&) { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation s;
  double fired_at = -1.0;
  s.schedule_at(Seconds(10.0), [&fired_at](Simulation& sim) {
    sim.schedule_in(Seconds(5.0), [&fired_at](Simulation& inner) {
      fired_at = inner.now().value();
    });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation s;
  bool fired = false;
  const EventHandle h =
      s.schedule_at(Seconds(1.0), [&fired](Simulation&) { fired = true; });
  EXPECT_TRUE(s.cancel(h));
  EXPECT_EQ(s.pending(), 0u);
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation s;
  const EventHandle h = s.schedule_at(Seconds(1.0), [](Simulation&) {});
  EXPECT_TRUE(s.cancel(h));
  EXPECT_FALSE(s.cancel(h));
  EXPECT_FALSE(s.cancel(EventHandle{}));
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation s;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    s.schedule_at(Seconds(t), [&fired](Simulation& sim) {
      fired.push_back(sim.now().value());
    });
  }
  EXPECT_EQ(s.run_until(Seconds(2.5)), 2u);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(s.now().value(), 2.5);
  EXPECT_EQ(s.pending(), 2u);
}

TEST(Simulation, RunUntilAdvancesIdleClock) {
  Simulation s;
  s.run_until(Seconds(100.0));
  EXPECT_DOUBLE_EQ(s.now().value(), 100.0);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation s;
  int chain = 0;
  Simulation::Callback next = [&](Simulation& sim) {
    if (++chain < 10) {
      sim.schedule_in(Seconds(1.0), [&](Simulation& inner) {
        if (++chain < 10) inner.schedule_in(Seconds(1.0), next);
      });
    }
  };
  s.schedule_at(Seconds(0.0), next);
  s.run();
  EXPECT_GE(chain, 2);
}

TEST(Simulation, PastSchedulingThrows) {
  Simulation s;
  s.schedule_at(Seconds(5.0), [](Simulation&) {});
  s.run();
  EXPECT_THROW(s.schedule_at(Seconds(1.0), [](Simulation&) {}), Error);
  EXPECT_THROW(s.schedule_in(Seconds(-1.0), [](Simulation&) {}), Error);
}

TEST(Simulation, StepFiresExactlyOne) {
  Simulation s;
  int count = 0;
  s.schedule_at(Seconds(1.0), [&count](Simulation&) { ++count; });
  s.schedule_at(Seconds(2.0), [&count](Simulation&) { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulation, CancelledEventSkippedByStep) {
  Simulation s;
  bool second = false;
  const EventHandle h = s.schedule_at(Seconds(1.0), [](Simulation&) {});
  s.schedule_at(Seconds(2.0), [&second](Simulation&) { second = true; });
  s.cancel(h);
  EXPECT_TRUE(s.step());  // skips cancelled, fires the 2.0s event
  EXPECT_TRUE(second);
}

// Regression: the seed engine accepted cancel() for ids that had already
// fired (any id < the sequence counter), silently corrupting pending().
// A handle must be dead the moment its event fires.
TEST(Simulation, CancelAfterFireReturnsFalse) {
  for (const Simulation::Engine engine : kBothEngines) {
    Simulation s(engine);
    bool fired = false;
    const EventHandle h =
        s.schedule_at(Seconds(1.0), [&fired](Simulation&) { fired = true; });
    s.schedule_at(Seconds(2.0), [](Simulation&) {});
    EXPECT_EQ(s.run(), 2u);
    EXPECT_TRUE(fired);
    EXPECT_FALSE(s.cancel(h));
    EXPECT_EQ(s.pending(), 0u);
  }
}

// The retained reference oracle carries the same fix (its header calls
// out the deliberate deviation from the seed).
TEST(SimulationReference, CancelAfterFireReturnsFalse) {
  SimulationReference s;
  bool fired = false;
  const ReferenceEventHandle h =
      s.schedule_at(Seconds(1.0), [&fired](SimulationReference&) {
        fired = true;
      });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(s.cancel(h));
  EXPECT_EQ(s.pending(), 0u);
}

// A callback cancelling its own (currently firing) event gets false: the
// slot is invalidated before the callable runs.
TEST(Simulation, CancelOwnHandleDuringCallbackReturnsFalse) {
  for (const Simulation::Engine engine : kBothEngines) {
    Simulation s(engine);
    EventHandle h;
    bool cancel_result = true;
    h = s.schedule_at(Seconds(1.0), [&](Simulation& sim) {
      cancel_result = sim.cancel(h);
    });
    EXPECT_EQ(s.run(), 1u);
    EXPECT_FALSE(cancel_result);
    EXPECT_EQ(s.pending(), 0u);
  }
}

// Cancel-then-reschedule reuses the slab slot (LIFO free list); the
// generation bump must reject the stale handle even though the slot is
// live again under a new event.
TEST(Simulation, StaleHandleRejectedAfterSlotReuse) {
  Simulation s;
  bool a_fired = false;
  bool b_fired = false;
  const EventHandle a =
      s.schedule_at(Seconds(1.0), [&a_fired](Simulation&) { a_fired = true; });
  EXPECT_TRUE(s.cancel(a));
  const EventHandle b =
      s.schedule_at(Seconds(2.0), [&b_fired](Simulation&) { b_fired = true; });
  ASSERT_EQ(a.slot, b.slot);  // the freed slot was reused...
  EXPECT_NE(a.generation, b.generation);  // ...under a new generation
  EXPECT_FALSE(s.cancel(a));  // stale handle must not kill event B
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_FALSE(a_fired);
  EXPECT_TRUE(b_fired);
  EXPECT_FALSE(s.cancel(b));  // and B's handle dies once B fires
}

// schedule_at(now()) from inside a firing callback: legal, fires in the
// same run at the same timestamp, after every equal-time event that was
// scheduled earlier (FIFO by sequence).
TEST(Simulation, ScheduleAtNowInsideCallbackFiresSameRun) {
  for (const Simulation::Engine engine : kBothEngines) {
    Simulation s(engine);
    std::vector<int> order;
    s.schedule_at(Seconds(1.0), [&order](Simulation& sim) {
      order.push_back(1);
      sim.schedule_at(sim.now(), [&order](Simulation&) { order.push_back(3); });
    });
    s.schedule_at(Seconds(1.0), [&order](Simulation&) { order.push_back(2); });
    EXPECT_EQ(s.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now().value(), 1.0);
  }
}

// Events at integer times 0..512 re-span into a ladder rung of width
// exactly 1.0, so every event sits exactly on a bucket start boundary.
// run_until(horizon) landing exactly on such a boundary must include the
// boundary event (<= horizon, not <).
TEST(Simulation, RunUntilExactlyOnLadderBucketBoundary) {
  Simulation s;
  std::size_t fired = 0;
  for (int t = 0; t <= 512; ++t) {
    s.schedule_at(Seconds(static_cast<double>(t)),
                  [&fired](Simulation&) { ++fired; });
  }
  EXPECT_EQ(s.run_until(Seconds(0.0)), 1u);  // the t=0 event, exactly
  EXPECT_EQ(s.run_until(Seconds(7.0)), 7u);  // t=1..7 inclusive
  EXPECT_DOUBLE_EQ(s.now().value(), 7.0);
  EXPECT_EQ(s.pending(), 505u);
  EXPECT_EQ(s.run_until(Seconds(511.0)), 504u);  // t=8..511
  EXPECT_EQ(s.run(), 1u);                        // t=512
  EXPECT_EQ(fired, 513u);
}

}  // namespace
}  // namespace reshape::sim
