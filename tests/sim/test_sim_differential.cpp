// Differential replay suite for the event engines.
//
// Seeded random-op campaigns (schedule/cancel churn with nested
// scheduling) drive the ladder engine, the in-kernel reference heap and
// the retained seed engine (SimulationReference) through identical
// workloads; the observed fire traces must match element-for-element.
// A million-event equal-timestamp campaign additionally pins the stable
// FIFO tiebreak across ladder re-spans and spawn-blocked giant buckets.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "sim/simulation.hpp"
#include "sim/simulation_reference.hpp"

namespace reshape::sim {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// One fire observation: which logical event ran, and when.
struct Fire {
  std::uint64_t id = 0;
  double at = 0.0;
  bool operator==(const Fire&) const = default;
};

/// Drives one engine through the seeded campaign and records the trace.
/// Sim is any engine with schedule_in/cancel/run; Handle its handle type.
template <typename Sim, typename Handle>
std::vector<Fire> campaign(Sim& sim, std::uint64_t seed,
                           std::uint64_t events) {
  struct Driver {
    Sim& sim;
    std::uint64_t rng;
    std::uint64_t remaining;
    std::uint64_t next_id = 0;
    std::vector<Fire> trace;
    std::vector<Handle> window;

    void spawn() {
      if (remaining == 0) return;
      --remaining;
      const std::uint64_t id = ++next_id;
      const std::uint64_t r = splitmix(rng);
      // Delays spanning several orders of magnitude, plus a slice of
      // exact zero delays (same-timestamp arrivals) and repeated exact
      // values (equal-timestamp ties across distinct events).
      double delay;
      switch (r & 7u) {
        case 0: delay = 0.0; break;
        case 1: delay = 1.0; break;
        default:
          delay = static_cast<double>(r % 100000u) * 1e-3;
          break;
      }
      const Handle h = sim.schedule_in(
          Seconds(delay), [this, id](auto& s) { fired(id, s.now()); });
      if ((r & 3u) == 0) window.push_back(h);
    }

    void fired(std::uint64_t id, Seconds at) {
      trace.push_back(Fire{id, at.value()});
      const std::uint64_t r = splitmix(rng);
      spawn();
      if ((r & 15u) == 0) spawn();  // occasional fan-out
      if ((r & 7u) == 0 && !window.empty()) {
        const std::size_t pick =
            static_cast<std::size_t>((r >> 8) % window.size());
        const bool hit = sim.cancel(window[pick]);
        // Cancel outcomes are part of the differential contract too.
        trace.push_back(Fire{hit ? ~0ull : ~1ull, 0.0});
        window[pick] = window.back();
        window.pop_back();
      }
    }
  };

  Driver d{sim, seed, events, 0, {}, {}};
  for (int i = 0; i < 64; ++i) d.spawn();
  sim.run();
  return d.trace;
}

TEST(SimDifferential, RandomOpCampaignsMatchAcrossAllThreeEngines) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    Simulation ladder(Simulation::Engine::kLadder);
    Simulation heap(Simulation::Engine::kReferenceHeap);
    SimulationReference seed_engine;

    const auto t_ladder =
        campaign<Simulation, EventHandle>(ladder, seed, 30000);
    const auto t_heap = campaign<Simulation, EventHandle>(heap, seed, 30000);
    const auto t_seed = campaign<SimulationReference, ReferenceEventHandle>(
        seed_engine, seed, 30000);

    ASSERT_GT(t_ladder.size(), 30000u);
    EXPECT_EQ(t_ladder, t_heap) << "ladder vs reference heap, seed " << seed;
    EXPECT_EQ(t_ladder, t_seed) << "ladder vs seed engine, seed " << seed;
    // Drained engines agree on the clock too.
    EXPECT_DOUBLE_EQ(ladder.now().value(), heap.now().value());
    EXPECT_DOUBLE_EQ(ladder.now().value(), seed_engine.now().value());
  }
}

// A million events at one timestamp: the re-span collapses the whole
// range into one bucket whose width bottoms out at kMinWidth, so rung
// spawning is blocked and the ladder must consume a giant heap-ordered
// bucket — in exact scheduling order.  Mid-run same-timestamp arrivals
// (scheduled from the first callback) must queue behind every earlier
// event at that timestamp.
TEST(SimDifferential, MillionEqualTimestampsFireInScheduleOrder) {
  constexpr std::uint32_t kSeeded = 1000000;
  constexpr std::uint32_t kLate = 1000;

  Simulation s;
  s.reserve(kSeeded + kLate);
  std::vector<std::uint32_t> order;
  order.reserve(kSeeded + kLate);

  s.schedule_at(Seconds(1.0), [&order](Simulation& sim) {
    order.push_back(0);
    for (std::uint32_t i = 0; i < kLate; ++i) {
      sim.schedule_at(Seconds(1.0), [&order, i](Simulation&) {
        order.push_back(kSeeded + i);
      });
    }
  });
  for (std::uint32_t i = 1; i < kSeeded; ++i) {
    s.schedule_at(Seconds(1.0),
                  [&order, i](Simulation&) { order.push_back(i); });
  }

  EXPECT_EQ(s.run(), static_cast<std::size_t>(kSeeded + kLate));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kSeeded + kLate));
  for (std::uint32_t i = 0; i < kSeeded + kLate; ++i) {
    ASSERT_EQ(order[i], i) << "FIFO violated at position " << i;
  }
  EXPECT_DOUBLE_EQ(s.now().value(), 1.0);
}

// Time must never run backwards while draining a skewed distribution
// that exercises re-spans and rung spawns (log-uniform delays).
TEST(SimDifferential, ClockMonotoneThroughRespansAndSpawns) {
  Simulation s;
  std::uint64_t rng = 99;
  std::uint64_t remaining = 200000;
  double last = -1.0;
  bool monotone = true;

  struct Feeder {
    Simulation& sim;
    std::uint64_t& rng;
    std::uint64_t& remaining;
    double& last;
    bool& monotone;
    void operator()(Simulation& inner) const {
      if (inner.now().value() < last) monotone = false;
      last = inner.now().value();
      if (remaining == 0) return;
      --remaining;
      const std::uint64_t r = splitmix(rng);
      const std::uint64_t exp_bits = 1023u - 13u + (r >> 60);
      const double delay =
          std::bit_cast<double>((exp_bits << 52) | ((r & 0xffffu) << 36));
      inner.schedule_in(Seconds(delay),
                        Feeder{sim, rng, remaining, last, monotone});
    }
  };

  for (int i = 0; i < 512; ++i) {
    s.schedule_at(Seconds(0.0), Feeder{s, rng, remaining, last, monotone});
  }
  s.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace reshape::sim
