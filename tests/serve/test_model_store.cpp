// ShardedModelStore: seeding, wait-free snapshots, epoch stamping, and
// the determinism contract — a refit is a pure function of the
// observation multiset, never of ingest interleaving.
#include "serve/model_store.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "serve/model_key.hpp"

namespace reshape::serve {
namespace {

model::Predictor prior_fit(double intercept, double slope) {
  model::AffineFit fit;
  fit.intercept = intercept;
  fit.slope = slope;
  return model::Predictor(fit);
}

const ModelKeyView kKey{"grep", "f11:s20:c4"};

TEST(ShardedModelStore, UnknownKeyHasNoSnapshotAndEpochZero) {
  ShardedModelStore store;
  EXPECT_EQ(store.snapshot(kKey), nullptr);
  EXPECT_EQ(store.epoch(kKey), 0u);
  EXPECT_EQ(store.size(), 0u);
}

TEST(ShardedModelStore, SeedPublishesThePriorAtEpochOne) {
  ShardedModelStore store;
  const model::Predictor prior = prior_fit(5.0, 1e-7);
  store.seed(kKey, prior);

  const auto snap = store.snapshot(kKey);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch, 1u);
  EXPECT_EQ(snap->observations, 0u);
  EXPECT_DOUBLE_EQ(snap->predictor.affine().intercept, 5.0);
  EXPECT_DOUBLE_EQ(snap->predictor.affine().slope, 1e-7);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ShardedModelStore, ShardCountRoundsUpToAPowerOfTwo) {
  EXPECT_EQ(ShardedModelStore(1).shard_count(), 1u);
  EXPECT_EQ(ShardedModelStore(5).shard_count(), 8u);
  EXPECT_EQ(ShardedModelStore(16).shard_count(), 16u);
}

TEST(ShardedModelStore, ObserveUnseededKeyThrows) {
  ShardedModelStore store;
  EXPECT_THROW(store.observe(kKey, Bytes(1024), Seconds(1.0)), Error);
}

TEST(ShardedModelStore, EachAcceptedObservationBumpsTheEpoch) {
  ShardedModelStore store;
  store.seed(kKey, prior_fit(5.0, 1e-7));
  EXPECT_EQ(store.observe(kKey, Bytes(1u << 20), Seconds(2.0)), 2u);
  EXPECT_EQ(store.observe(kKey, Bytes(2u << 20), Seconds(3.0)), 3u);
  EXPECT_EQ(store.epoch(kKey), 3u);
  EXPECT_EQ(store.snapshot(kKey)->observations, 2u);
}

TEST(ShardedModelStore, NoSignalObservationsInvalidateNothing) {
  ShardedModelStore store;
  store.seed(kKey, prior_fit(5.0, 1e-7));
  // ThroughputBank's own rule: zero volume or non-positive time carries
  // no signal, so the epoch — the invalidation currency — must not move.
  EXPECT_EQ(store.observe(kKey, Bytes(0), Seconds(1.0)), 1u);
  EXPECT_EQ(store.observe(kKey, Bytes(1024), Seconds(0.0)), 1u);
  EXPECT_EQ(store.observe(kKey, Bytes(1024), Seconds(-1.0)), 1u);
  EXPECT_EQ(store.epoch(kKey), 1u);
  EXPECT_EQ(store.snapshot(kKey)->observations, 0u);
}

TEST(ShardedModelStore, BelowTheEvidenceFloorThePriorStands) {
  ShardedModelStore store(16, 3);
  const model::Predictor prior = prior_fit(7.0, 2e-7);
  store.seed(kKey, prior);
  (void)store.observe(kKey, Bytes(1u << 20), Seconds(2.0));
  (void)store.observe(kKey, Bytes(4u << 20), Seconds(5.0));

  const auto snap = store.snapshot(kKey);
  EXPECT_EQ(snap->epoch, 3u);  // epoch moved (plans must replan) ...
  // ... but with only 2 observations the published fit is still the prior.
  EXPECT_DOUBLE_EQ(snap->predictor.affine().intercept, 7.0);
  EXPECT_DOUBLE_EQ(snap->predictor.affine().slope, 2e-7);
}

TEST(ShardedModelStore, RefitIsAPureFunctionOfTheObservationMultiset) {
  const std::vector<std::pair<std::uint64_t, double>> obs = {
      {10u << 20, 3.0}, {50u << 20, 11.0}, {20u << 20, 5.5},
      {80u << 20, 17.0}, {5u << 20, 2.2},
  };

  ShardedModelStore forward, reverse;
  const model::Predictor prior = prior_fit(1.0, 1e-7);
  forward.seed(kKey, prior);
  reverse.seed(kKey, prior);
  for (const auto& [v, t] : obs) {
    (void)forward.observe(kKey, Bytes(v), Seconds(t));
  }
  for (auto it = obs.rbegin(); it != obs.rend(); ++it) {
    (void)reverse.observe(kKey, Bytes(it->first), Seconds(it->second));
  }

  const auto a = forward.snapshot(kKey);
  const auto b = reverse.snapshot(kKey);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->epoch, b->epoch);
  // Bit-for-bit: the sorted replay makes the OLS summation order — and
  // therefore the fit — independent of ingest order.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a->predictor.affine().intercept),
            std::bit_cast<std::uint64_t>(b->predictor.affine().intercept));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a->predictor.affine().slope),
            std::bit_cast<std::uint64_t>(b->predictor.affine().slope));
  // And the refit actually happened (5 observations > floor of 3).
  EXPECT_NE(std::bit_cast<std::uint64_t>(a->predictor.affine().slope),
            std::bit_cast<std::uint64_t>(prior.affine().slope));
}

TEST(ShardedModelStore, ReseedDropsObservationsAndKillsOldPlans) {
  ShardedModelStore store;
  store.seed(kKey, prior_fit(5.0, 1e-7));
  (void)store.observe(kKey, Bytes(1u << 20), Seconds(2.0));
  (void)store.observe(kKey, Bytes(2u << 20), Seconds(3.0));
  ASSERT_EQ(store.epoch(kKey), 3u);

  store.seed(kKey, prior_fit(9.0, 3e-7));
  const auto snap = store.snapshot(kKey);
  EXPECT_EQ(snap->epoch, 4u);  // strictly newer: cached plans die
  EXPECT_EQ(snap->observations, 0u);
  EXPECT_DOUBLE_EQ(snap->predictor.affine().intercept, 9.0);
  EXPECT_EQ(store.size(), 1u);
}

TEST(ShardedModelStore, HeterogeneousLookupFindsOwnedKeys) {
  ShardedModelStore store;
  store.seed(ModelKeyView{"pos-tag", "f9:s18:c4"}, prior_fit(2.0, 4e-8));

  // Query with views borrowed from a larger buffer — the hot path never
  // builds a std::string.
  const std::string blob = "xxpos-tagyyf9:s18:c4zz";
  const ModelKeyView borrowed{std::string_view(blob).substr(2, 7),
                              std::string_view(blob).substr(11, 9)};
  const auto snap = store.snapshot(borrowed);
  ASSERT_NE(snap, nullptr);
  EXPECT_DOUBLE_EQ(snap->predictor.affine().intercept, 2.0);

  // "ab"/"c" vs "a"/"bc": the separator keeps concatenations distinct.
  store.seed(ModelKeyView{"ab", "c"}, prior_fit(1.0, 1e-9));
  EXPECT_EQ(store.snapshot(ModelKeyView{"a", "bc"}), nullptr);
  EXPECT_NE(store.snapshot(ModelKeyView{"ab", "c"}), nullptr);
}

TEST(ShardedModelStore, KeysAreIndependent) {
  ShardedModelStore store(4);
  const ModelKeyView other{"grep", "f20:s20:c4"};
  store.seed(kKey, prior_fit(5.0, 1e-7));
  store.seed(other, prior_fit(6.0, 2e-7));
  for (int i = 1; i <= 4; ++i) {
    (void)store.observe(kKey, Bytes(static_cast<std::uint64_t>(i) << 20),
                        Seconds(1.0 + i));
  }
  EXPECT_EQ(store.epoch(kKey), 5u);
  EXPECT_EQ(store.epoch(other), 1u);  // untouched neighbor keeps its epoch
  EXPECT_EQ(store.size(), 2u);
}

TEST(CorpusShapeSignature, DeterministicAndShapeSensitive) {
  std::vector<corpus::VirtualFile> small_files;
  for (std::uint64_t i = 0; i < 100; ++i) {
    small_files.push_back(corpus::VirtualFile{i, Bytes(64 * 1024), 1.0});
  }
  const corpus::Corpus small(small_files);
  std::vector<corpus::VirtualFile> big_files;
  for (std::uint64_t i = 0; i < 100; ++i) {
    big_files.push_back(corpus::VirtualFile{i, Bytes(64u << 20), 1.0});
  }
  const corpus::Corpus big(big_files);

  EXPECT_EQ(corpus_shape_signature(small), corpus_shape_signature(small));
  EXPECT_NE(corpus_shape_signature(small), corpus_shape_signature(big));
}

}  // namespace
}  // namespace reshape::serve
