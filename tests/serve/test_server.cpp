// PlanServer end-to-end: bit-identical plans, cache hits, epoch
// invalidation, micro-batching, admission control and clean shutdown.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <future>
#include <thread>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "provision/planner.hpp"
#include "serve/model_key.hpp"

namespace reshape::serve {
namespace {

model::Predictor prior_fit(double intercept, double slope) {
  model::AffineFit fit;
  fit.intercept = intercept;
  fit.slope = slope;
  return model::Predictor(fit);
}

std::shared_ptr<const corpus::Corpus> test_corpus(std::size_t files,
                                                  std::uint64_t file_size) {
  std::vector<corpus::VirtualFile> v;
  for (std::uint64_t i = 0; i < files; ++i) {
    v.push_back(corpus::VirtualFile{i, Bytes(file_size), 1.0});
  }
  return std::make_shared<corpus::Corpus>(std::move(v));
}

/// Field-by-field bit comparison of two plans.
void expect_identical(const provision::ExecutionPlan& a,
                      const provision::ExecutionPlan& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.deadline.value()),
            std::bit_cast<std::uint64_t>(b.deadline.value()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.planning_deadline.value()),
            std::bit_cast<std::uint64_t>(b.planning_deadline.value()));
  EXPECT_EQ(a.per_instance_target.count(), b.per_instance_target.count());
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].volume.count(),
              b.assignments[i].volume.count());
    EXPECT_EQ(a.assignments[i].file_count, b.assignments[i].file_count);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.assignments[i].mean_complexity),
              std::bit_cast<std::uint64_t>(b.assignments[i].mean_complexity));
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.predicted_makespan.value()),
            std::bit_cast<std::uint64_t>(b.predicted_makespan.value()));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.predicted_instance_hours),
            std::bit_cast<std::uint64_t>(b.predicted_instance_hours));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.predicted_cost.amount()),
            std::bit_cast<std::uint64_t>(b.predicted_cost.amount()));
}

PlanRequest request_for(std::shared_ptr<const corpus::Corpus> corpus,
                        double deadline_s, std::uint64_t tag = 0,
                        std::string app = "grep") {
  PlanRequest request;
  request.app = std::move(app);
  request.shape = "v1";
  request.corpus = std::move(corpus);
  request.options.deadline = Seconds(deadline_s);
  request.options.strategy = provision::PackingStrategy::kUniform;
  request.corpus_tag = tag;
  return request;
}

TEST(PlanServer, ServedPlanIsBitIdenticalToTheDirectLibraryCall) {
  PlanServer server;
  const model::Predictor prior = prior_fit(5.0, 1e-7);
  server.seed_model("grep", "v1", prior);
  const auto corpus = test_corpus(200, 10u << 20);

  const PlanResponse response = server.plan_sync(request_for(corpus, 60.0));
  ASSERT_EQ(response.status, PlanStatus::kOk);
  EXPECT_FALSE(response.cache_hit);
  EXPECT_EQ(response.model_epoch, 1u);

  PlanRequest direct = request_for(corpus, 60.0);
  expect_identical(response.plan,
                   provision::plan(prior, *corpus, direct.options));
}

TEST(PlanServer, RepeatRequestHitsTheCacheWithTheSamePlan) {
  PlanServer server;
  server.seed_model("grep", "v1", prior_fit(5.0, 1e-7));
  const auto corpus = test_corpus(200, 10u << 20);

  const PlanResponse cold = server.plan_sync(request_for(corpus, 60.0));
  const PlanResponse warm = server.plan_sync(request_for(corpus, 60.0));
  ASSERT_EQ(cold.status, PlanStatus::kOk);
  ASSERT_EQ(warm.status, PlanStatus::kOk);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(warm.cache_hit);
  expect_identical(cold.plan, warm.plan);

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.planned, 1u);
}

TEST(PlanServer, DifferentOptionsBypassTheCache) {
  PlanServer server;
  server.seed_model("grep", "v1", prior_fit(5.0, 1e-7));
  const auto corpus = test_corpus(200, 10u << 20);

  const PlanResponse a = server.plan_sync(request_for(corpus, 60.0));
  const PlanResponse b = server.plan_sync(request_for(corpus, 90.0));
  ASSERT_EQ(a.status, PlanStatus::kOk);
  ASSERT_EQ(b.status, PlanStatus::kOk);
  EXPECT_FALSE(b.cache_hit);
  EXPECT_NE(a.plan.assignments.size(), b.plan.assignments.size());
}

TEST(PlanServer, IngestInvalidatesExactlyTheRefittedKey) {
  PlanServer server;
  server.seed_model("grep", "v1", prior_fit(5.0, 1e-7));
  server.seed_model("pos", "v1", prior_fit(9.0, 4e-7));
  const auto corpus = test_corpus(200, 10u << 20);

  (void)server.plan_sync(request_for(corpus, 60.0));
  (void)server.plan_sync(request_for(corpus, 60.0, 0, "pos"));

  // Enough probes to clear the evidence floor and move the fit.
  (void)server.ingest("grep", "v1", Bytes(100u << 20), Seconds(16.0));
  (void)server.ingest("grep", "v1", Bytes(200u << 20), Seconds(26.0));
  const std::uint64_t epoch =
      server.ingest("grep", "v1", Bytes(400u << 20), Seconds(46.0));
  EXPECT_EQ(epoch, 4u);

  const PlanResponse replanned = server.plan_sync(request_for(corpus, 60.0));
  ASSERT_EQ(replanned.status, PlanStatus::kOk);
  EXPECT_FALSE(replanned.cache_hit);  // stale plan died with the old epoch
  EXPECT_EQ(replanned.model_epoch, 4u);

  const PlanResponse untouched =
      server.plan_sync(request_for(corpus, 60.0, 0, "pos"));
  EXPECT_TRUE(untouched.cache_hit);  // the neighbor's plans survived
  EXPECT_EQ(server.stats().ingests, 3u);
}

TEST(PlanServer, EmptyShapeDerivesTheCorpusSignature) {
  PlanServer server;
  const auto corpus = test_corpus(200, 10u << 20);
  server.seed_model("grep", corpus_shape_signature(*corpus),
                    prior_fit(5.0, 1e-7));

  PlanRequest request = request_for(corpus, 60.0);
  request.shape.clear();
  const PlanResponse response = server.plan_sync(std::move(request));
  EXPECT_EQ(response.status, PlanStatus::kOk);
}

TEST(PlanServer, UnknownModelFailsTheRequest) {
  PlanServer server;
  const PlanResponse response =
      server.plan_sync(request_for(test_corpus(8, 1u << 20), 60.0));
  EXPECT_EQ(response.status, PlanStatus::kFailed);
  EXPECT_FALSE(response.error.empty());
  EXPECT_EQ(server.stats().failed, 1u);
}

TEST(PlanServer, InfeasibleRequestFailsWithThePlannersError) {
  PlanServer server;
  server.seed_model("grep", "v1", prior_fit(5.0, 1e-7));
  // Deadline below the intercept: even an empty assignment misses.
  const PlanResponse response =
      server.plan_sync(request_for(test_corpus(8, 1u << 20), 1.0));
  EXPECT_EQ(response.status, PlanStatus::kFailed);
  EXPECT_FALSE(response.error.empty());
}

TEST(PlanServer, SameKeyRequestsFormOneMicroBatch) {
  ServerConfig config;
  config.workers = 1;
  config.max_batch = 8;
  config.batch_window = Seconds(1.0);  // generous: all 8 arrive in time
  PlanServer server(config);
  server.seed_model("grep", "v1", prior_fit(5.0, 1e-7));
  const auto corpus = test_corpus(64, 10u << 20);

  // Distinct deadlines so no request can be served from the cache.
  std::vector<std::future<PlanResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(server.submit(request_for(corpus, 60.0 + i)));
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, PlanStatus::kOk);
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.batched_requests, 8u);
  // All eight shared the window, so they dispatched in far fewer batches
  // than requests — exactly one when the dispatcher wasn't outraced.
  EXPECT_LE(stats.batches, 2u);
  EXPECT_EQ(stats.planned, 8u);
}

TEST(PlanServer, OverloadRejectsWithARetryAfterHint) {
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.overload = OverloadPolicy::kRejectRetryAfter;
  config.max_batch = 16;
  config.batch_window = Seconds(0.5);
  PlanServer server(config);
  server.seed_model("a", "v1", prior_fit(5.0, 1e-7));
  server.seed_model("b", "v1", prior_fit(5.0, 1e-7));
  const auto corpus = test_corpus(64, 10u << 20);

  // The dispatcher pops this key-a request and lingers in its batch
  // window, leaving the queue to the key-b requests below.
  auto lead_future = server.submit(request_for(corpus, 60.0, 0, "a"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<std::future<PlanResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(request_for(corpus, 60.0 + i, 0, "b")));
  }

  std::vector<PlanResponse> responses;
  responses.push_back(futures[0].get());
  responses.push_back(futures[1].get());
  responses.push_back(futures[2].get());
  std::size_t ok = 0, rejected = 0;
  for (const PlanResponse& r : responses) {
    if (r.status == PlanStatus::kOk) ok += 1;
    if (r.status == PlanStatus::kRejected) {
      rejected += 1;
      EXPECT_GT(r.retry_after.value(), 0.0);
    }
  }
  EXPECT_EQ(ok, 2u);        // capacity admitted
  EXPECT_EQ(rejected, 1u);  // the overflow refused, with a hint
  EXPECT_EQ(lead_future.get().status, PlanStatus::kOk);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_GT(server.retry_after_hint().value(), 0.0);
}

TEST(PlanServer, OverloadShedsTheOldestUnderShedPolicy) {
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  config.overload = OverloadPolicy::kShedOldest;
  config.max_batch = 16;
  config.batch_window = Seconds(0.5);
  PlanServer server(config);
  server.seed_model("a", "v1", prior_fit(5.0, 1e-7));
  server.seed_model("b", "v1", prior_fit(5.0, 1e-7));
  const auto corpus = test_corpus(64, 10u << 20);

  auto lead_future = server.submit(request_for(corpus, 60.0, 0, "a"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::vector<std::future<PlanResponse>> futures;
  for (int i = 0; i < 3; ++i) {
    futures.push_back(server.submit(request_for(corpus, 60.0 + i, 0, "b")));
  }

  // Freshest-work-wins: the first key-b request was shed to admit the
  // third; the shed future resolves immediately.
  EXPECT_EQ(futures[0].get().status, PlanStatus::kShed);
  EXPECT_EQ(futures[1].get().status, PlanStatus::kOk);
  EXPECT_EQ(futures[2].get().status, PlanStatus::kOk);
  EXPECT_EQ(lead_future.get().status, PlanStatus::kOk);
  EXPECT_EQ(server.stats().shed, 1u);
}

TEST(PlanServer, ShutdownResolvesEveryOutstandingPromise) {
  std::vector<std::future<PlanResponse>> futures;
  {
    ServerConfig config;
    config.workers = 1;
    config.max_batch = 1;
    config.batch_window = Seconds(0.0);
    PlanServer server(config);
    server.seed_model("grep", "v1", prior_fit(5.0, 1e-7));
    const auto corpus = test_corpus(400, 10u << 20);
    for (int i = 0; i < 16; ++i) {
      futures.push_back(server.submit(request_for(corpus, 60.0 + i)));
    }
    // Destructor runs here with requests still in flight.
  }
  for (auto& f : futures) {
    const PlanResponse response = f.get();  // never a broken promise
    EXPECT_TRUE(response.status == PlanStatus::kOk ||
                response.status == PlanStatus::kShed);
  }
}

TEST(PlanServer, StatsAndDepthAccessorsWork) {
  PlanServer server;
  server.seed_model("grep", "v1", prior_fit(5.0, 1e-7));
  EXPECT_EQ(server.queue_depth(), 0u);
  const auto corpus = test_corpus(32, 1u << 20);
  (void)server.plan_sync(request_for(corpus, 60.0, 11));
  (void)server.plan_sync(request_for(corpus, 60.0, 11));
  EXPECT_EQ(server.stats().requests, 2u);
  EXPECT_EQ(server.cache().hits(), 1u);
  EXPECT_EQ(server.models().size(), 1u);
}

}  // namespace
}  // namespace reshape::serve
