// PlanCache: fingerprinting, epoch-validated hits, FIFO eviction.
#include "serve/plan_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "corpus/corpus.hpp"
#include "provision/planner.hpp"

namespace reshape::serve {
namespace {

const ModelKeyView kKey{"grep", "f11:s20:c4"};

corpus::Corpus small_corpus(std::uint64_t file_size) {
  std::vector<corpus::VirtualFile> files;
  for (std::uint64_t i = 0; i < 16; ++i) {
    files.push_back(corpus::VirtualFile{i, Bytes(file_size), 1.0});
  }
  return corpus::Corpus(std::move(files));
}

provision::ExecutionPlan plan_with_cost(double cost) {
  provision::ExecutionPlan plan;
  plan.predicted_cost = Dollars(cost);
  return plan;
}

TEST(PlanCacheFingerprint, OptionsChangesChangeTheFingerprint) {
  provision::PlanOptions a;
  provision::PlanOptions b = a;
  EXPECT_EQ(options_fingerprint(a), options_fingerprint(b));
  b.deadline = Seconds(a.deadline.value() + 1.0);
  EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
  b = a;
  b.strategy = provision::PackingStrategy::kAdjusted;
  EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
  b = a;
  b.residuals.stddev = 0.25;
  EXPECT_NE(options_fingerprint(a), options_fingerprint(b));
}

TEST(PlanCacheFingerprint, ContentDigestDistinguishesCorpora) {
  const corpus::Corpus small = small_corpus(1u << 20);
  const corpus::Corpus big = small_corpus(2u << 20);
  const provision::PlanOptions options;
  EXPECT_EQ(request_fingerprint(small, options, 0),
            request_fingerprint(small, options, 0));
  EXPECT_NE(request_fingerprint(small, options, 0),
            request_fingerprint(big, options, 0));
}

TEST(PlanCacheFingerprint, NonZeroTagSkipsTheContentDigest) {
  const corpus::Corpus small = small_corpus(1u << 20);
  const corpus::Corpus big = small_corpus(2u << 20);
  const provision::PlanOptions options;
  // The tag is the tenant's versioning contract: same tag, same
  // fingerprint, regardless of content (which is what makes hits O(1)).
  EXPECT_EQ(request_fingerprint(small, options, 42),
            request_fingerprint(big, options, 42));
  EXPECT_NE(request_fingerprint(small, options, 42),
            request_fingerprint(small, options, 43));
  // And a tag can never collide with the content-digest domain.
  EXPECT_NE(request_fingerprint(small, options, 42),
            request_fingerprint(small, options, 0));
}

TEST(PlanCache, MissThenHitAtTheSameEpoch) {
  PlanCache cache;
  EXPECT_EQ(cache.find(kKey, 7, 1), nullptr);
  cache.put(kKey, 7, 1, plan_with_cost(3.5));

  const auto hit = cache.find(kKey, 7, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->model_epoch, 1u);
  EXPECT_DOUBLE_EQ(hit->plan.predicted_cost.amount(), 3.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, DifferentFingerprintsMiss) {
  PlanCache cache;
  cache.put(kKey, 7, 1, plan_with_cost(3.5));
  EXPECT_EQ(cache.find(kKey, 8, 1), nullptr);
  EXPECT_EQ(cache.find(ModelKeyView{"grep", "other"}, 7, 1), nullptr);
}

TEST(PlanCache, StaleEpochIsAMiss) {
  PlanCache cache;
  cache.put(kKey, 7, 1, plan_with_cost(3.5));
  // The model refit to epoch 2: the cached plan is dead on arrival.
  EXPECT_EQ(cache.find(kKey, 7, 2), nullptr);
  EXPECT_EQ(cache.stale(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  // The replan overwrites in place and epoch-2 lookups hit again.
  cache.put(kKey, 7, 2, plan_with_cost(4.0));
  const auto hit = cache.find(kKey, 7, 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->plan.predicted_cost.amount(), 4.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, FifoEvictionAtCapacity) {
  PlanCache cache(1, 2);  // one shard, two slots
  cache.put(kKey, 1, 1, plan_with_cost(1.0));
  cache.put(kKey, 2, 1, plan_with_cost(2.0));
  cache.put(kKey, 3, 1, plan_with_cost(3.0));

  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(kKey, 1, 1), nullptr);  // oldest gone
  EXPECT_NE(cache.find(kKey, 2, 1), nullptr);
  EXPECT_NE(cache.find(kKey, 3, 1), nullptr);
}

TEST(PlanCache, OverwriteKeepsTheOriginalEvictionSlot) {
  PlanCache cache(1, 2);
  cache.put(kKey, 1, 1, plan_with_cost(1.0));
  cache.put(kKey, 2, 1, plan_with_cost(2.0));
  // Refreshing key 1 must not duplicate its slot in the FIFO order ...
  cache.put(kKey, 1, 2, plan_with_cost(1.5));
  EXPECT_EQ(cache.size(), 2u);
  // ... so the next insertion still evicts key 1 (oldest insertion), and
  // exactly one entry.
  cache.put(kKey, 3, 1, plan_with_cost(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(kKey, 1, 2), nullptr);
  EXPECT_NE(cache.find(kKey, 2, 1), nullptr);
  EXPECT_NE(cache.find(kKey, 3, 1), nullptr);
}

TEST(PlanCache, HitsReturnSharedSnapshotsThatSurviveEviction) {
  PlanCache cache(1, 1);
  cache.put(kKey, 1, 1, plan_with_cost(1.0));
  const auto held = cache.find(kKey, 1, 1);
  ASSERT_NE(held, nullptr);
  cache.put(kKey, 2, 1, plan_with_cost(2.0));  // evicts key 1
  EXPECT_EQ(cache.find(kKey, 1, 1), nullptr);
  // The reader's shared_ptr keeps the evicted plan alive and intact.
  EXPECT_DOUBLE_EQ(held->plan.predicted_cost.amount(), 1.0);
}

}  // namespace
}  // namespace reshape::serve
