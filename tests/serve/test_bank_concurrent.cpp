// Concurrent probe ingestion: the ThroughputBank-backed model store under
// multi-threaded observe() — no torn fits, no lost observations, and a
// final refit that is bit-identical no matter how the threads interleave.
// Labeled tsan-smoke: this is the suite a -DRESHAPE_SANITIZE=thread build
// sweeps for the planning service.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/units.hpp"
#include "model/predictor.hpp"
#include "serve/model_store.hpp"

namespace reshape::serve {
namespace {

constexpr std::size_t kThreads = 4;
constexpr std::size_t kPerThread = 64;

model::Predictor prior_fit() {
  model::AffineFit fit;
  fit.intercept = 5.0;
  fit.slope = 1e-7;
  return model::Predictor(fit);
}

/// The observation thread `t`, draw `i` banks: distinct per (t, i) so a
/// lost or duplicated ingest changes the multiset (and thus the fit).
Bytes volume_of(std::size_t t, std::size_t i) {
  return Bytes(((t * kPerThread + i) + 1) << 20);
}
Seconds elapsed_of(std::size_t t, std::size_t i) {
  return Seconds(2.0 + 0.11 * static_cast<double>(t * kPerThread + i));
}

TEST(ThroughputBankAccessors, ExposeObservationsInIngestOrder) {
  model::ThroughputBank bank;
  bank.observe(Bytes(2u << 20), Seconds(3.0));
  bank.observe(Bytes(0), Seconds(1.0));        // no signal: skipped
  bank.observe(Bytes(1u << 20), Seconds(0.0));  // no signal: skipped
  bank.observe(Bytes(1u << 20), Seconds(2.0));

  ASSERT_EQ(bank.count(), 2u);
  EXPECT_DOUBLE_EQ(bank.volumes()[0], static_cast<double>(2u << 20));
  EXPECT_DOUBLE_EQ(bank.volumes()[1], static_cast<double>(1u << 20));
  EXPECT_DOUBLE_EQ(bank.times()[0], 3.0);
  EXPECT_DOUBLE_EQ(bank.times()[1], 2.0);
}

TEST(ConcurrentIngest, NoTornFitsAndNoLostObservations) {
  ShardedModelStore store(8, 3);
  const ModelKeyView key{"grep", "v1"};
  store.seed(key, prior_fit());

  // Readers race the writers: every snapshot they see must be internally
  // consistent (epoch == observations + 1 is this store's invariant: one
  // epoch for the seed, one per accepted observation).
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = store.snapshot(key);
      if (snap == nullptr || snap->epoch != snap->observations + 1) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        (void)store.observe(key, volume_of(t, i), elapsed_of(t, i));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(torn.load(), 0u);
  const auto final_snap = store.snapshot(key);
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->observations, kThreads * kPerThread);
  EXPECT_EQ(final_snap->epoch, kThreads * kPerThread + 1);
}

TEST(ConcurrentIngest, FinalRefitIsDeterministicAcrossInterleavings) {
  // Sequential reference: the same multiset ingested by one thread.
  ShardedModelStore reference(8, 3);
  const ModelKeyView key{"grep", "v1"};
  reference.seed(key, prior_fit());
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < kPerThread; ++i) {
      (void)reference.observe(key, volume_of(t, i), elapsed_of(t, i));
    }
  }
  const auto expect = reference.snapshot(key);

  // Two independent concurrent runs: whatever interleaving the scheduler
  // produces, the published fit must equal the reference bit for bit.
  for (int run = 0; run < 2; ++run) {
    ShardedModelStore store(8, 3);
    store.seed(key, prior_fit());
    std::vector<std::thread> writers;
    for (std::size_t t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          (void)store.observe(key, volume_of(t, i), elapsed_of(t, i));
        }
      });
    }
    for (std::thread& w : writers) w.join();

    const auto snap = store.snapshot(key);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->epoch, expect->epoch);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(snap->predictor.affine().slope),
              std::bit_cast<std::uint64_t>(expect->predictor.affine().slope));
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(snap->predictor.affine().intercept),
        std::bit_cast<std::uint64_t>(expect->predictor.affine().intercept));
  }
}

TEST(ConcurrentIngest, DisjointKeysNeverInterfere) {
  ShardedModelStore store(4, 3);
  std::vector<std::string> apps;
  for (std::size_t t = 0; t < kThreads; ++t) {
    apps.push_back("tenant-" + std::to_string(t));
    store.seed(ModelKeyView{apps.back(), "v1"}, prior_fit());
  }

  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      const ModelKeyView key{apps[t], "v1"};
      for (std::size_t i = 0; i < kPerThread; ++i) {
        (void)store.observe(key, volume_of(t, i), elapsed_of(t, i));
      }
    });
  }
  for (std::thread& w : writers) w.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    const auto snap = store.snapshot(ModelKeyView{apps[t], "v1"});
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->observations, kPerThread);
    EXPECT_EQ(snap->epoch, kPerThread + 1);
  }
  EXPECT_EQ(store.size(), kThreads);
}

}  // namespace
}  // namespace reshape::serve
