#include "provision/executor.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "corpus/distribution.hpp"
#include "provision/planner.hpp"

namespace reshape::provision {
namespace {

model::Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return model::Predictor::fit(xs, ys);
}

corpus::Corpus small_gig(std::uint64_t seed = 1) {
  Rng rng(seed);
  corpus::Corpus all =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 60'000, rng);
  return all.take_volume(200_MB);
}

ExecutionPlan uniform_plan(const corpus::Corpus& data, Seconds deadline) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = deadline;
  options.strategy = PackingStrategy::kUniform;
  return planner.plan(data, options);
}

struct ExecutorFixture : ::testing::Test {
  sim::Simulation sim;
  cloud::ProviderConfig uniform_config() {
    cloud::ProviderConfig config;
    config.mixture = cloud::uniform_fast_mixture();
    return config;
  }
};

TEST_F(ExecutorFixture, AllAssignmentsRunAndTerminate) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const corpus::Corpus data = small_gig();
  const ExecutionPlan plan = uniform_plan(data, 1_h);
  Rng noise(1);
  const ExecutionReport report = execute_plan(
      provider, plan, cloud::pos_profile(), ExecutionOptions{}, noise);
  EXPECT_EQ(report.instance_count(), plan.instance_count());
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.id.valid());
    EXPECT_GT(o.exec_time.value(), 0.0);
    EXPECT_EQ(provider.instance(o.id).state(),
              cloud::InstanceState::kTerminated);
  }
  EXPECT_GT(report.makespan.value(), 0.0);
}

TEST_F(ExecutorFixture, UniformFleetMeetsDeadline) {
  // With the paper's simplifying assumption (all instances uniform and
  // well-performing), a uniform plan meets its deadline.
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(2);
  ExecutionOptions options;
  options.data_on_ebs = true;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_EQ(report.missed, 0u);
  EXPECT_LE(report.makespan, plan.deadline);
}

TEST_F(ExecutorFixture, HeterogeneousFleetCanMiss) {
  // Slow instances (up to 4x CPU) blow through a deadline the uniform
  // model predicted comfortably — the paper's Fig. 8(a)/9(b) misses.
  cloud::ProviderConfig config;  // default heterogeneous mixture
  cloud::CloudProvider provider(sim, Rng(123), config);
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(3);
  const ExecutionReport report = execute_plan(
      provider, plan, cloud::pos_profile(), ExecutionOptions{}, noise);
  EXPECT_GT(report.missed, 0u);
  EXPECT_GT(report.worst_overrun(), 1.0);
}

TEST_F(ExecutorFixture, CostMatchesBilledInstanceHours) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(4);
  const ExecutionReport report = execute_plan(
      provider, plan, cloud::pos_profile(), ExecutionOptions{}, noise);
  EXPECT_NEAR(report.cost.amount(), report.instance_hours * 0.085, 1e-9);
  // Sub-hour runs bill one hour each.
  EXPECT_DOUBLE_EQ(report.instance_hours,
                   static_cast<double>(plan.instance_count()));
}

TEST_F(ExecutorFixture, LocalStagingAddsConstantTime) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(5);
  ExecutionOptions local;
  local.data_on_ebs = false;
  local.local_staging_time = Seconds(180.0);
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), local, noise);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_DOUBLE_EQ(o.staging.value(), 180.0);
  }
}

TEST_F(ExecutorFixture, ReshapedUnitChangesFileCount) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const corpus::Corpus data = small_gig();
  const ExecutionPlan plan = uniform_plan(data, 1_h);
  Rng noise(6);
  ExecutionOptions reshaped;
  reshaped.reshaped_unit = 10_MB;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::grep_profile(), reshaped, noise);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_LE(o.file_count,
              o.volume.count() / (10_MB).count() + 1);
  }
}

TEST_F(ExecutorFixture, DeterministicAcrossReplays) {
  const corpus::Corpus data = small_gig();
  const ExecutionPlan plan = uniform_plan(data, 1_h);
  auto run_once = [&](std::uint64_t seed) {
    sim::Simulation local_sim;
    cloud::CloudProvider provider(local_sim, Rng(seed), cloud::ProviderConfig{});
    Rng noise(9);
    return execute_plan(provider, plan, cloud::pos_profile(),
                        ExecutionOptions{}, noise);
  };
  const ExecutionReport a = run_once(42);
  const ExecutionReport b = run_once(42);
  ASSERT_EQ(a.instance_count(), b.instance_count());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.outcomes[i].work_time.value(),
                     b.outcomes[i].work_time.value());
  }
  EXPECT_EQ(a.cost, b.cost);
}

// --- Fault tolerance ------------------------------------------------------

cloud::ProviderConfig faulty_config(double crash_rate,
                                    double p_boot = 0.0) {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  config.faults.crash_rate_per_hour = crash_rate;
  config.faults.p_boot_failure = p_boot;
  return config;
}

ExecutionOptions recovery_options() {
  ExecutionOptions options;
  // The uniform-fast fleet benches writes at 65 * 0.92 = 59.8 MB/s, so the
  // paper's 60 MB/s bar would reject every replacement; screen just below.
  options.relaunch_threshold = Rate::megabytes_per_second(55.0);
  // A generous budget: these tests assert completion, not abandonment.
  options.max_relaunches = 10;
  return options;
}

TEST_F(ExecutorFixture, ZeroFaultModelKeepsAllFaultCountersZero) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  const ExecutionReport report = execute_plan(
      provider, plan, cloud::pos_profile(), ExecutionOptions{}, noise);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_EQ(report.relaunches, 0u);
  EXPECT_EQ(report.redistributions, 0u);
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_DOUBLE_EQ(report.recovery_time.value(), 0.0);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_TRUE(o.error.empty());
    EXPECT_EQ(o.failures, 0u);
    EXPECT_EQ(o.relaunches, 0u);
  }
}

TEST_F(ExecutorFixture, SurvivesCrashesAndCompletesEveryAssignment) {
  // A crash rate of ~1.5/instance-hour over half-hour-ish runs gives a
  // high chance of at least one mid-run failure across the fleet.
  cloud::CloudProvider provider(sim, Rng(101), faulty_config(1.5));
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  const ExecutionReport report = execute_plan(
      provider, plan, cloud::pos_profile(), recovery_options(), noise);
  ASSERT_GE(report.failures, 1u) << "seed no longer injects a failure; "
                                    "pick another seed for this test";
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_GE(report.relaunches + report.redistributions, 1u);
  EXPECT_GT(report.recovery_time.value(), 0.0);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_GT(o.work_time.value(), 0.0);
  }
}

TEST_F(ExecutorFixture, CrashedAssignmentReusesItsEbsVolume) {
  cloud::CloudProvider provider(sim, Rng(101), faulty_config(1.5));
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  ExecutionOptions options = recovery_options();
  options.data_on_ebs = true;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  ASSERT_GE(report.failures, 1u);
  // Recovery re-attaches the assignment's persistent volume instead of
  // creating a new one: exactly one volume per assignment, ever.
  EXPECT_EQ(provider.volume_count(), plan.instance_count());
  for (const InstanceOutcome& o : report.outcomes) {
    ASSERT_TRUE(o.volume_id.valid());
    // The data staged onto the volume survived every crash.
    EXPECT_GE(provider.volume(o.volume_id).used(), o.volume);
  }
}

TEST_F(ExecutorFixture, BootFailuresAreRecoveredToo) {
  cloud::CloudProvider provider(sim, Rng(55), faulty_config(0.0, 0.3));
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  const ExecutionReport report = execute_plan(
      provider, plan, cloud::pos_profile(), recovery_options(), noise);
  ASSERT_GE(report.failures, 1u) << "seed no longer injects a boot failure";
  EXPECT_EQ(report.abandoned, 0u);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.completed);
  }
}

TEST_F(ExecutorFixture, ExhaustedRecoveryYieldsStructuredErrorNotACrash) {
  // Every boot fails (bar a sliver) and no relaunches are allowed: with no
  // survivor to redistribute to, assignments degrade to error outcomes.
  cloud::ProviderConfig config = faulty_config(0.0, 0.999);
  cloud::CloudProvider provider(sim, Rng(77), config);
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  ExecutionOptions options;
  options.max_relaunches = 0;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  ASSERT_GT(report.abandoned, 0u);
  // An abandoned assignment never meets the deadline.
  EXPECT_GE(report.missed, report.abandoned);
  for (const InstanceOutcome& o : report.outcomes) {
    if (!o.completed) {
      EXPECT_FALSE(o.error.empty());
      EXPECT_FALSE(o.met_deadline);
    }
  }
}

TEST_F(ExecutorFixture, FaultyRunsReplayBitIdentically) {
  const corpus::Corpus data = small_gig();
  const ExecutionPlan plan = uniform_plan(data, 1_h);
  auto run_once = [&]() {
    sim::Simulation local_sim;
    cloud::CloudProvider provider(local_sim, Rng(101), faulty_config(1.5, 0.1));
    Rng noise(9);
    return execute_plan(provider, plan, cloud::pos_profile(),
                        recovery_options(), noise);
  };
  const ExecutionReport a = run_once();
  const ExecutionReport b = run_once();
  ASSERT_EQ(a.instance_count(), b.instance_count());
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.relaunches, b.relaunches);
  EXPECT_EQ(a.redistributions, b.redistributions);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_DOUBLE_EQ(a.recovery_time.value(), b.recovery_time.value());
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id.value, b.outcomes[i].id.value);
    EXPECT_EQ(a.outcomes[i].failures, b.outcomes[i].failures);
    EXPECT_EQ(a.outcomes[i].relaunches, b.outcomes[i].relaunches);
    EXPECT_EQ(a.outcomes[i].completed, b.outcomes[i].completed);
    EXPECT_DOUBLE_EQ(a.outcomes[i].work_time.value(),
                     b.outcomes[i].work_time.value());
    EXPECT_DOUBLE_EQ(a.outcomes[i].recovery_time.value(),
                     b.outcomes[i].recovery_time.value());
  }
  EXPECT_EQ(a.cost, b.cost);
}

// --- Data-plane fault tolerance -------------------------------------------

cloud::ProviderConfig transfer_faulty_config(double p_error,
                                             double p_corruption = 0.0) {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  config.faults.p_transfer_error = p_error;
  config.faults.p_transfer_corruption = p_corruption;
  return config;
}

TEST_F(ExecutorFixture, ZeroDataFaultsLeaveTransferCountersZero) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  const ExecutionReport report = execute_plan(
      provider, plan, cloud::pos_profile(), ExecutionOptions{}, noise);
  EXPECT_EQ(report.transfer_retries, 0u);
  EXPECT_DOUBLE_EQ(report.transfer_retry_time.value(), 0.0);
  EXPECT_EQ(report.corruptions_detected, 0u);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_EQ(o.transfer_retries, 0);
    EXPECT_DOUBLE_EQ(o.retrieval.value(), 0.0);
  }
}

TEST_F(ExecutorFixture, FlakyStagingRetriesAndStillCompletes) {
  cloud::CloudProvider provider(sim, Rng(7), transfer_faulty_config(0.4));
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  ExecutionOptions options;
  options.transfer_retry.max_attempts = 8;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_GT(report.transfer_retries, 0u);
  EXPECT_GT(report.transfer_retry_time.value(), 0.0);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_TRUE(o.completed);
  }
}

TEST_F(ExecutorFixture, CertainTransferFailureAbandonsWithStructuredError) {
  cloud::CloudProvider provider(sim, Rng(7), transfer_faulty_config(1.0));
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  ExecutionOptions options;
  options.transfer_retry.max_attempts = 3;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_EQ(report.abandoned, report.instance_count());
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_FALSE(o.completed);
    EXPECT_NE(o.error.find("staging transfer failed"), std::string::npos)
        << o.error;
  }
}

TEST_F(ExecutorFixture, CorruptionIsDetectedAndRetriedDuringStaging) {
  cloud::CloudProvider provider(sim, Rng(7),
                                transfer_faulty_config(0.0, 0.3));
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  ExecutionOptions options;
  options.transfer_retry.max_attempts = 8;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_GT(report.corruptions_detected, 0u);
}

TEST_F(ExecutorFixture, OutputRatioChargesRetrievalAgainstTheDeadline) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  ExecutionOptions options;
  options.output_ratio = 0.2;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  for (const InstanceOutcome& o : report.outcomes) {
    EXPECT_GT(o.retrieval.value(), 0.0);
    EXPECT_GE(o.work_time, o.retrieval);
  }

  // Same seed without retrieval: the makespan must be strictly shorter.
  sim::Simulation sim2;
  cloud::CloudProvider provider2(sim2, Rng(7), uniform_config());
  Rng noise2(1);
  const ExecutionReport without = execute_plan(
      provider2, plan, cloud::pos_profile(), ExecutionOptions{}, noise2);
  EXPECT_GT(report.makespan.value(), without.makespan.value());
}

TEST_F(ExecutorFixture, HedgedRetrievalSurvivesAFlakyChannel) {
  cloud::CloudProvider provider(sim, Rng(7), transfer_faulty_config(0.3));
  const ExecutionPlan plan = uniform_plan(small_gig(), 1_h);
  Rng noise(1);
  ExecutionOptions options;
  options.output_ratio = 0.2;
  options.hedge_retrieval = true;
  options.transfer_retry.max_attempts = 6;
  const ExecutionReport report =
      execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_EQ(report.abandoned, 0u);
  EXPECT_GT(report.hedge_wins, 0u);
}

TEST_F(ExecutorFixture, DataPlaneFaultRunsReplayBitIdentically) {
  const corpus::Corpus data = small_gig();
  const ExecutionPlan plan = uniform_plan(data, 1_h);
  auto run_once = [&]() {
    sim::Simulation local_sim;
    cloud::CloudProvider provider(local_sim, Rng(101),
                                  transfer_faulty_config(0.3, 0.05));
    Rng noise(9);
    ExecutionOptions options;
    options.output_ratio = 0.1;
    options.transfer_retry.max_attempts = 8;
    return execute_plan(provider, plan, cloud::pos_profile(), options, noise);
  };
  const ExecutionReport a = run_once();
  const ExecutionReport b = run_once();
  ASSERT_EQ(a.instance_count(), b.instance_count());
  EXPECT_EQ(a.transfer_retries, b.transfer_retries);
  EXPECT_DOUBLE_EQ(a.transfer_retry_time.value(),
                   b.transfer_retry_time.value());
  EXPECT_EQ(a.corruptions_detected, b.corruptions_detected);
  EXPECT_DOUBLE_EQ(a.makespan.value(), b.makespan.value());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].transfer_attempts, b.outcomes[i].transfer_attempts);
    EXPECT_DOUBLE_EQ(a.outcomes[i].retrieval.value(),
                     b.outcomes[i].retrieval.value());
  }
}

TEST_F(ExecutorFixture, EmptyPlanThrows) {
  cloud::CloudProvider provider(sim, Rng(7), uniform_config());
  ExecutionPlan plan;
  Rng noise(1);
  EXPECT_THROW((void)execute_plan(provider, plan, cloud::pos_profile(),
                                  ExecutionOptions{}, noise),
               Error);
}

}  // namespace
}  // namespace reshape::provision
