#include "provision/dynamic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "corpus/distribution.hpp"

namespace reshape::provision {
namespace {

model::Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return model::Predictor::fit(xs, ys);
}

corpus::Corpus data_200mb(std::uint64_t seed = 1) {
  Rng rng(seed);
  corpus::Corpus all =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 60'000, rng);
  return all.take_volume(200_MB);
}

ExecutionPlan uniform_plan(const corpus::Corpus& data) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kUniform;
  return planner.plan(data, options);
}

TEST(DynamicExecution, CompletesEveryAssignment) {
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(31), cloud::ProviderConfig{});
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);
  Rng noise(1);
  ReschedulingOptions options;
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_EQ(report.execution.instance_count(), plan.instance_count());
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_GT(o.work_time.value(), 0.0);
  }
}

TEST(DynamicExecution, ReplacesSlowInstances) {
  // Force a fleet with many slow instances so replacement triggers.
  cloud::ProviderConfig config;
  config.mixture.p_fast = 0.5;
  config.mixture.p_slow = 0.5;
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(77), config);
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);
  Rng noise(2);
  ReschedulingOptions options;
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_GT(report.replacements.size(), 0u);
  for (const RescheduleEvent& e : report.replacements) {
    EXPECT_TRUE(e.replaced.valid());
    EXPECT_TRUE(e.replacement.valid());
    EXPECT_NE(e.replaced.value, e.replacement.value);
    // The policy only switches when it projects an improvement.
    EXPECT_LT(e.new_completion.value(), e.old_projection.value());
  }
}

TEST(DynamicExecution, BeatsStaticOnSlowFleet) {
  cloud::ProviderConfig config;
  config.mixture.p_fast = 0.5;
  config.mixture.p_slow = 0.5;
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);

  sim::Simulation sim_static;
  cloud::CloudProvider provider_static(sim_static, Rng(77), config);
  Rng noise_static(2);
  ExecutionOptions exec_options;
  const ExecutionReport static_report = execute_plan(
      provider_static, plan, cloud::pos_profile(), exec_options,
      noise_static);

  sim::Simulation sim_dyn;
  cloud::CloudProvider provider_dyn(sim_dyn, Rng(77), config);
  Rng noise_dyn(2);
  ReschedulingOptions dyn_options;
  const DynamicReport dynamic_report = execute_with_rescheduling(
      provider_dyn, plan, cloud::pos_profile(), dyn_options, noise_dyn);

  EXPECT_LT(dynamic_report.execution.makespan.value(),
            static_report.makespan.value());
  EXPECT_LE(dynamic_report.execution.missed, static_report.missed);
}

TEST(DynamicExecution, NoReplacementsOnUniformFastFleet) {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(5), config);
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);
  Rng noise(3);
  ReschedulingOptions options;
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_TRUE(report.replacements.empty());
  EXPECT_EQ(report.execution.missed, 0u);
}

// --- Fault tolerance (composition with the injector) ----------------------

cloud::ProviderConfig crashy_config(double crash_rate) {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  config.faults.crash_rate_per_hour = crash_rate;
  return config;
}

ReschedulingOptions recovery_options() {
  ReschedulingOptions options;
  options.base.max_relaunches = 10;
  return options;
}

TEST(DynamicFaults, SurvivesCrashesAroundTheCheckpoint) {
  // A high crash rate makes failures land before, at and after the 600 s
  // checkpoint across the fleet; every assignment must still terminate
  // (completed or abandoned — with a generous relaunch budget, completed).
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(31), crashy_config(3.0));
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);
  Rng noise(1);
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), recovery_options(), noise);
  ASSERT_GE(report.execution.failures, 1u)
      << "seed no longer injects a crash; pick another seed";
  EXPECT_EQ(report.execution.abandoned, 0u);
  EXPECT_GE(report.execution.relaunches, 1u);
  EXPECT_GT(report.execution.recovery_time.value(), 0.0);
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_GT(o.work_time.value(), 0.0);
  }
}

TEST(DynamicFaults, ExhaustedRelaunchBudgetAbandonsCleanly) {
  sim::Simulation sim;
  // Crashes every few simulated minutes: no run survives to completion.
  cloud::CloudProvider provider(sim, Rng(31), crashy_config(40.0));
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);
  Rng noise(1);
  ReschedulingOptions options;
  options.base.max_relaunches = 0;
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), options, noise);
  ASSERT_GT(report.execution.abandoned, 0u);
  for (const InstanceOutcome& o : report.execution.outcomes) {
    if (!o.completed) {
      EXPECT_FALSE(o.error.empty());
      EXPECT_FALSE(o.met_deadline);
    }
  }
}

TEST(DynamicFaults, CrashyRunsReplayBitIdentically) {
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);
  auto run_once = [&]() {
    sim::Simulation sim;
    cloud::CloudProvider provider(sim, Rng(31), crashy_config(3.0));
    Rng noise(1);
    return execute_with_rescheduling(provider, plan, cloud::pos_profile(),
                                     recovery_options(), noise);
  };
  const DynamicReport a = run_once();
  const DynamicReport b = run_once();
  EXPECT_EQ(a.execution.failures, b.execution.failures);
  EXPECT_EQ(a.execution.relaunches, b.execution.relaunches);
  EXPECT_EQ(a.execution.abandoned, b.execution.abandoned);
  EXPECT_DOUBLE_EQ(a.execution.makespan.value(), b.execution.makespan.value());
  ASSERT_EQ(a.execution.outcomes.size(), b.execution.outcomes.size());
  for (std::size_t i = 0; i < a.execution.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.execution.outcomes[i].work_time.value(),
                     b.execution.outcomes[i].work_time.value());
    EXPECT_EQ(a.execution.outcomes[i].failures,
              b.execution.outcomes[i].failures);
  }
}

TEST(DynamicFaults, ZeroFaultModelKeepsCountersZeroAndBehaviourIdentical) {
  // Guard for the fault-hook plumbing: with the zero model the dynamic
  // path must not record failures or recovery time.
  sim::Simulation sim;
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  cloud::CloudProvider provider(sim, Rng(5), config);
  const corpus::Corpus data = data_200mb();
  const ExecutionPlan plan = uniform_plan(data);
  Rng noise(3);
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), ReschedulingOptions{}, noise);
  EXPECT_EQ(report.execution.failures, 0u);
  EXPECT_EQ(report.execution.relaunches, 0u);
  EXPECT_EQ(report.execution.abandoned, 0u);
  EXPECT_DOUBLE_EQ(report.execution.recovery_time.value(), 0.0);
}

TEST(DynamicExecution, RequiresEbs) {
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(5), cloud::ProviderConfig{});
  const ExecutionPlan plan = uniform_plan(data_200mb());
  Rng noise(4);
  ReschedulingOptions options;
  options.base.data_on_ebs = false;
  EXPECT_THROW((void)execute_with_rescheduling(provider, plan,
                                               cloud::pos_profile(), options,
                                               noise),
               Error);
}

}  // namespace
}  // namespace reshape::provision
