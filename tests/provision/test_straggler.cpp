#include "provision/straggler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace reshape::provision {
namespace {

// --- robust estimator primitives ------------------------------------------

TEST(RobustStats, MedianOfOddAndEvenSamples) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(RobustStats, MadIsMedianAbsoluteDeviation) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 100.0};
  const double med = median(xs);
  EXPECT_DOUBLE_EQ(med, 3.0);
  // |xs - 3| = {2, 1, 0, 1, 97} -> median 1.
  EXPECT_DOUBLE_EQ(mad(xs, med), 1.0);
}

// --- detector edge cases (the ISSUE's required quartet) -------------------

StragglerDetector fed(const std::vector<double>& rates,
                      std::uint64_t seq = 1) {
  StragglerDetector detector;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    detector.ingest({i, seq, rates[i]});
  }
  return detector;
}

TEST(StragglerDetector, UniformlySlowFleetFlagsNobody) {
  // Every slot crawls at the same rate: MAD ~ 0 and the median is the
  // fleet.  There is nobody better to copy work to, so no flags.
  const StragglerDetector detector =
      fed({2.0e6, 2.0e6, 2.0e6, 2.0e6, 2.0e6, 2.0e6});
  EXPECT_TRUE(detector.flag(1).empty());
}

TEST(StragglerDetector, UniformlySlowWithTinyJitterStillFlagsNobody) {
  const StragglerDetector detector =
      fed({2.00e6, 1.99e6, 2.01e6, 2.00e6, 1.98e6, 2.02e6});
  EXPECT_TRUE(detector.flag(1).empty());
}

TEST(StragglerDetector, SingleFastOutlierDoesNotDragFleetUnderTheBar) {
  // One hot instance must not make the normal majority look slow.
  const StragglerDetector detector =
      fed({2.0e6, 2.0e6, 2.0e6, 2.0e6, 2.0e6, 20.0e6});
  EXPECT_TRUE(detector.flag(1).empty());
}

TEST(StragglerDetector, GenuineStragglerIsFlagged) {
  const StragglerDetector detector =
      fed({10.0e6, 10.1e6, 9.9e6, 10.0e6, 10.2e6, 1.0e6});
  const std::vector<std::uint64_t> flagged = detector.flag(1);
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0], 5u);
}

TEST(StragglerDetector, FlagsComeInAscendingSlotOrder) {
  StragglerDetector detector;
  detector.ingest({7, 1, 1.0e6});
  detector.ingest({2, 1, 1.1e6});
  detector.ingest({0, 1, 10.0e6});
  detector.ingest({1, 1, 10.1e6});
  detector.ingest({3, 1, 9.9e6});
  detector.ingest({4, 1, 10.0e6});
  detector.ingest({5, 1, 10.2e6});
  const std::vector<std::uint64_t> flagged = detector.flag(1);
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[0], 2u);
  EXPECT_EQ(flagged[1], 7u);
}

TEST(StragglerDetector, OutOfEpochOrderReportsCannotRollASlotBackwards) {
  StragglerDetector detector;
  // The slot recovered in epoch 3; a straggling epoch-1 report arrives
  // late and must be dropped, not resurrect the bad rate.
  detector.ingest({0, 3, 10.0e6});
  detector.ingest({0, 1, 0.5e6});
  ASSERT_NE(detector.latest(0), nullptr);
  EXPECT_EQ(detector.latest(0)->seq, 3u);
  EXPECT_DOUBLE_EQ(detector.latest(0)->rate, 10.0e6);

  detector.ingest({1, 3, 10.1e6});
  detector.ingest({2, 3, 9.9e6});
  detector.ingest({3, 3, 10.0e6});
  EXPECT_TRUE(detector.flag(3).empty());
}

TEST(StragglerDetector, StaleSlotsNeitherFlagNorSkewTheMedian) {
  StragglerDetector detector;
  // Slot 9 last reported two epochs ago, slowly; with min_seq at the
  // current epoch it neither gets flagged nor drags the median down.
  detector.ingest({9, 1, 0.1e6});
  detector.ingest({0, 3, 10.0e6});
  detector.ingest({1, 3, 10.0e6});
  detector.ingest({2, 3, 10.1e6});
  detector.ingest({3, 3, 9.9e6});
  EXPECT_TRUE(detector.flag(3).empty());
}

TEST(StragglerDetector, BelowMinimumPopulationNothingFlags) {
  const StragglerDetector detector = fed({10.0e6, 0.1e6});
  EXPECT_TRUE(detector.flag(1).empty());
}

TEST(StragglerDetector, ForgetDropsTheSlot) {
  StragglerDetector detector = fed({10.0e6, 10.0e6, 10.0e6, 1.0e6});
  EXPECT_EQ(detector.tracked(), 4u);
  detector.forget(3);
  EXPECT_EQ(detector.tracked(), 3u);
  EXPECT_EQ(detector.latest(3), nullptr);
  EXPECT_TRUE(detector.flag(1).empty());
}

// --- speculative race tie-break -------------------------------------------

TEST(SpeculativeRace, EarlierFinishWinsRegardlessOfIdentity) {
  const SpeculativeContender original{1, 0, Seconds(100.0)};
  const SpeculativeContender hedge{2, 7, Seconds(90.0)};
  EXPECT_EQ(&speculative_winner(original, hedge), &hedge);
  EXPECT_EQ(&speculative_winner(hedge, original), &hedge);
}

TEST(SpeculativeRace, ExactTieResolvesByAscendingSeqThenSlot) {
  // An exact finish-time tie must pick the same winner on every replay:
  // the lower (seq, slot) — i.e. the original attempt, launched in the
  // earlier epoch.
  const SpeculativeContender original{1, 5, Seconds(100.0)};
  const SpeculativeContender hedge{3, 2, Seconds(100.0)};
  EXPECT_EQ(&speculative_winner(original, hedge), &original);
  EXPECT_EQ(&speculative_winner(hedge, original), &original);

  // Same epoch (both hedges of a wider race): ascending slot breaks it.
  const SpeculativeContender a{2, 1, Seconds(100.0)};
  const SpeculativeContender b{2, 4, Seconds(100.0)};
  EXPECT_EQ(&speculative_winner(a, b), &a);
  EXPECT_EQ(&speculative_winner(b, a), &a);
}

}  // namespace
}  // namespace reshape::provision
