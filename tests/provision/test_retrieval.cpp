// Tests for the output-retrieval model (§1's second reshaping benefit).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "provision/retrieval.hpp"

namespace reshape::provision {
namespace {

TEST(OutputSegmentation, PerInputFile) {
  const OutputSegmentation seg =
      OutputSegmentation::per_input_file(400'000, 1_GB, 0.1);
  EXPECT_EQ(seg.object_count, 400'000u);
  EXPECT_EQ(seg.total_volume, 100_MB);
}

TEST(OutputSegmentation, PerBlockCeil) {
  const OutputSegmentation seg =
      OutputSegmentation::per_block(1_GB, 100_MB, 0.1);
  EXPECT_EQ(seg.object_count, 10u);
  const OutputSegmentation odd =
      OutputSegmentation::per_block(Bytes((1_GB).count() + 1), 100_MB, 1.0);
  EXPECT_EQ(odd.object_count, 11u);
}

TEST(Retrieval, RequestOverheadDominatesManySmallObjects) {
  const cloud::S3Model s3;
  const OutputSegmentation fragmented =
      OutputSegmentation::per_input_file(400'000, 1_GB, 0.1);
  const RetrievalEstimate est = expected_retrieval_time(fragmented, s3);
  EXPECT_GT(est.request_overhead, est.transfer);
  EXPECT_DOUBLE_EQ(est.total.value(),
                   est.request_overhead.value() + est.transfer.value());
}

TEST(Retrieval, ReshapedOutputRetrievesMuchFaster) {
  // §1: "a lower number of output files ... results in a shorter
  // retrieval time".  Same bytes, 40000x fewer objects.
  const cloud::S3Model s3;
  const OutputSegmentation fragmented =
      OutputSegmentation::per_input_file(400'000, 1_GB, 0.1);
  const OutputSegmentation merged =
      OutputSegmentation::per_block(1_GB, 100_MB, 0.1);
  const double t_frag = expected_retrieval_time(fragmented, s3).total.value();
  const double t_merged = expected_retrieval_time(merged, s3).total.value();
  EXPECT_GT(t_frag / t_merged, 5.0);
}

TEST(Retrieval, TransferBoundForLargeObjects) {
  const cloud::S3Model s3;
  const OutputSegmentation merged =
      OutputSegmentation::per_block(10_GB, 1_GB, 1.0);
  const RetrievalEstimate est = expected_retrieval_time(merged, s3);
  EXPECT_LT(est.request_overhead.value(), est.transfer.value() * 0.01);
  EXPECT_NEAR(est.transfer.value(),
              (10_GB).as_double() / s3.transfer_rate.bytes_per_second(),
              1e-6);
}

TEST(Retrieval, SampledMatchesExpectedOnAverage) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  const double expected = expected_retrieval_time(seg, s3).total.value();
  Rng rng(4);
  double total = 0.0;
  const int reps = 50;
  for (int i = 0; i < reps; ++i) {
    total += retrieval_time_sampled(seg, s3, rng).value();
  }
  EXPECT_NEAR(total / reps, expected, expected * 0.15);
}

TEST(Retrieval, ParallelStreamsDivideTime) {
  const cloud::S3Model s3;
  const OutputSegmentation seg =
      OutputSegmentation::per_input_file(10'000, 100_MB, 0.5);
  const double seq = expected_retrieval_time(seg, s3).total.value();
  EXPECT_NEAR(parallel_retrieval_time(seg, s3, 10).value(), seq / 10.0,
              1e-9);
  EXPECT_THROW((void)parallel_retrieval_time(seg, s3, 0), Error);
}

TEST(Retrieval, EmptyOutputIsFree) {
  const cloud::S3Model s3;
  const OutputSegmentation none{};
  EXPECT_DOUBLE_EQ(expected_retrieval_time(none, s3).total.value(), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(retrieval_time_sampled(none, s3, rng).value(), 0.0);
}

TEST(OutputSegmentation, InvalidInputsThrow) {
  EXPECT_THROW(
      (void)OutputSegmentation::per_input_file(10, 1_MB, -0.1), Error);
  EXPECT_THROW((void)OutputSegmentation::per_block(1_MB, 0_B, 1.0), Error);
}

TEST(ReliableRetrieval, ZeroReliabilityIsExactlyTheCleanEstimate) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  const RetrievalEstimate clean = expected_retrieval_time(seg, s3);
  const TransferReliability zero =
      TransferReliability::from(cloud::FaultModel{}, RetryPolicy{});
  const RetrievalEstimate est =
      expected_retrieval_time(seg, s3, zero, RetryPolicy{});
  EXPECT_DOUBLE_EQ(est.total.value(), clean.total.value());
  EXPECT_DOUBLE_EQ(est.retry_overhead.value(), 0.0);
  EXPECT_DOUBLE_EQ(est.expected_attempts, 1.0);
}

TEST(ReliableRetrieval, RetryOverheadIsMonotoneInTheErrorRate) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  RetryPolicy policy;
  policy.max_attempts = 5;
  double prev_total = 0.0;
  for (double p = 0.0; p <= 0.45; p += 0.05) {
    cloud::FaultModel model;
    model.p_transfer_error = p;
    const TransferReliability rel = TransferReliability::from(model, policy);
    const RetrievalEstimate est =
        expected_retrieval_time(seg, s3, rel, policy);
    EXPECT_GE(est.total.value(), prev_total);
    if (p > 0.0) {
      EXPECT_GT(est.retry_overhead.value(), 0.0);
      EXPECT_GT(est.expected_attempts, 1.0);
    }
    prev_total = est.total.value();
  }
}

TEST(ReliableRetrieval, EnduredStallsInflateTransferTime) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  cloud::FaultModel model;
  model.p_transfer_stall = 0.2;
  model.transfer_stall_lo = 4.0;
  model.transfer_stall_hi = 6.0;

  // No watchdog: stalls are endured, transfer inflates by 1 + 0.2 * 4.
  const RetryPolicy no_watchdog;
  const TransferReliability endured =
      TransferReliability::from(model, no_watchdog);
  EXPECT_DOUBLE_EQ(endured.p_stall_endured, 0.2);
  EXPECT_DOUBLE_EQ(endured.failure_probability(), 0.0);
  const RetrievalEstimate clean = expected_retrieval_time(seg, s3);
  const RetrievalEstimate est =
      expected_retrieval_time(seg, s3, endured, no_watchdog);
  EXPECT_NEAR(est.transfer.value(),
              clean.transfer.value() * endured.stall_inflation(), 1e-9);

  // With a watchdog the stall becomes a per-attempt failure instead.
  RetryPolicy watchdog;
  watchdog.attempt_timeout = Seconds(5.0);
  const TransferReliability cut = TransferReliability::from(model, watchdog);
  EXPECT_DOUBLE_EQ(cut.p_stall_timeout, 0.2);
  EXPECT_DOUBLE_EQ(cut.p_stall_endured, 0.0);
}

TEST(ReliableRetrieval, HedgingBeatsSequentialOnAFlakyChannel) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  cloud::FaultModel model;
  model.p_transfer_error = 0.3;
  RetryPolicy policy;
  policy.max_attempts = 5;
  const TransferReliability rel = TransferReliability::from(model, policy);
  const RetrievalEstimate plain = expected_retrieval_time(seg, s3, rel, policy);
  const RetrievalEstimate hedged =
      expected_hedged_retrieval_time(seg, s3, rel, policy);
  EXPECT_TRUE(hedged.hedged);
  // E[min of two draws] < E[one draw] and the failure rate squares, so the
  // hedged estimate must be strictly faster here.
  EXPECT_LT(hedged.total.value(), plain.total.value());
  EXPECT_LT(hedged.expected_attempts, plain.expected_attempts);
}

TEST(SampledWithFaults, ZeroModelMatchesTheCleanSampler) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  const cloud::FaultInjector faults(Rng(7), cloud::FaultModel{});
  Rng a(11), b(11);
  const Seconds clean = retrieval_time_sampled(seg, s3, a);
  const SampledRetrieval sampled = retrieval_time_sampled_with_faults(
      seg, s3, faults, RetryPolicy{}, "out", b);
  EXPECT_DOUBLE_EQ(sampled.total.value(), clean.value());
  EXPECT_EQ(sampled.retries, 0);
  EXPECT_DOUBLE_EQ(sampled.retry_time.value(), 0.0);
  // Both samplers must leave the rng in the same state (bit-identity for
  // any downstream draws).
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SampledWithFaults, RetriesShowUpUnderTransientErrors) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  cloud::FaultModel model;
  model.p_transfer_error = 0.3;
  const cloud::FaultInjector faults(Rng(7), model);
  RetryPolicy policy;
  policy.max_attempts = 8;
  Rng rng(11);
  const SampledRetrieval sampled =
      retrieval_time_sampled_with_faults(seg, s3, faults, policy, "out", rng);
  EXPECT_GT(sampled.retries, 0);
  EXPECT_GT(sampled.retry_time.value(), 0.0);
  EXPECT_EQ(sampled.attempts,
            static_cast<int>(seg.object_count) + sampled.retries);
}

TEST(SampledWithFaults, BudgetExhaustionThrowsTransferError) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  cloud::FaultModel model;
  model.p_transfer_error = 1.0;
  const cloud::FaultInjector faults(Rng(7), model);
  RetryPolicy policy;
  policy.max_attempts = 2;
  Rng rng(11);
  EXPECT_THROW((void)retrieval_time_sampled_with_faults(seg, s3, faults,
                                                        policy, "out", rng),
               TransferError);
}

TEST(SampledWithFaults, SameSeedReplaysBitIdentically) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  cloud::FaultModel model;
  model.p_transfer_error = 0.2;
  model.p_transfer_corruption = 0.05;
  RetryPolicy policy;
  policy.max_attempts = 8;
  auto run = [&] {
    const cloud::FaultInjector faults(Rng(7), model);
    Rng rng(11);
    return retrieval_time_sampled_with_faults(seg, s3, faults, policy, "out",
                                              rng);
  };
  const SampledRetrieval first = run();
  const SampledRetrieval again = run();
  EXPECT_DOUBLE_EQ(first.total.value(), again.total.value());
  EXPECT_EQ(first.attempts, again.attempts);
  EXPECT_EQ(first.retries, again.retries);
  EXPECT_EQ(first.corruptions_detected, again.corruptions_detected);
}

TEST(SampledWithFaults, HedgedModeRescuesFailedPrimaries) {
  const cloud::S3Model s3;
  const OutputSegmentation seg =
      OutputSegmentation::per_input_file(200, 100_MB, 0.5);
  cloud::FaultModel model;
  model.p_transfer_error = 0.3;
  const cloud::FaultInjector faults(Rng(7), model);
  RetryPolicy policy;
  policy.max_attempts = 5;
  Rng rng(11);
  const SampledRetrieval hedged = retrieval_time_sampled_with_faults(
      seg, s3, faults, policy, "out", rng, /*hedge=*/true);
  // Over 200 flaky objects some duplicate must have beaten its primary.
  EXPECT_GT(hedged.hedge_wins, 0);
}

}  // namespace
}  // namespace reshape::provision
