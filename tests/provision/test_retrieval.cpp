// Tests for the output-retrieval model (§1's second reshaping benefit).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "provision/retrieval.hpp"

namespace reshape::provision {
namespace {

TEST(OutputSegmentation, PerInputFile) {
  const OutputSegmentation seg =
      OutputSegmentation::per_input_file(400'000, 1_GB, 0.1);
  EXPECT_EQ(seg.object_count, 400'000u);
  EXPECT_EQ(seg.total_volume, 100_MB);
}

TEST(OutputSegmentation, PerBlockCeil) {
  const OutputSegmentation seg =
      OutputSegmentation::per_block(1_GB, 100_MB, 0.1);
  EXPECT_EQ(seg.object_count, 10u);
  const OutputSegmentation odd =
      OutputSegmentation::per_block(Bytes((1_GB).count() + 1), 100_MB, 1.0);
  EXPECT_EQ(odd.object_count, 11u);
}

TEST(Retrieval, RequestOverheadDominatesManySmallObjects) {
  const cloud::S3Model s3;
  const OutputSegmentation fragmented =
      OutputSegmentation::per_input_file(400'000, 1_GB, 0.1);
  const RetrievalEstimate est = expected_retrieval_time(fragmented, s3);
  EXPECT_GT(est.request_overhead, est.transfer);
  EXPECT_DOUBLE_EQ(est.total.value(),
                   est.request_overhead.value() + est.transfer.value());
}

TEST(Retrieval, ReshapedOutputRetrievesMuchFaster) {
  // §1: "a lower number of output files ... results in a shorter
  // retrieval time".  Same bytes, 40000x fewer objects.
  const cloud::S3Model s3;
  const OutputSegmentation fragmented =
      OutputSegmentation::per_input_file(400'000, 1_GB, 0.1);
  const OutputSegmentation merged =
      OutputSegmentation::per_block(1_GB, 100_MB, 0.1);
  const double t_frag = expected_retrieval_time(fragmented, s3).total.value();
  const double t_merged = expected_retrieval_time(merged, s3).total.value();
  EXPECT_GT(t_frag / t_merged, 5.0);
}

TEST(Retrieval, TransferBoundForLargeObjects) {
  const cloud::S3Model s3;
  const OutputSegmentation merged =
      OutputSegmentation::per_block(10_GB, 1_GB, 1.0);
  const RetrievalEstimate est = expected_retrieval_time(merged, s3);
  EXPECT_LT(est.request_overhead.value(), est.transfer.value() * 0.01);
  EXPECT_NEAR(est.transfer.value(),
              (10_GB).as_double() / s3.transfer_rate.bytes_per_second(),
              1e-6);
}

TEST(Retrieval, SampledMatchesExpectedOnAverage) {
  const cloud::S3Model s3;
  const OutputSegmentation seg = OutputSegmentation::per_block(1_GB, 50_MB, 0.2);
  const double expected = expected_retrieval_time(seg, s3).total.value();
  Rng rng(4);
  double total = 0.0;
  const int reps = 50;
  for (int i = 0; i < reps; ++i) {
    total += retrieval_time_sampled(seg, s3, rng).value();
  }
  EXPECT_NEAR(total / reps, expected, expected * 0.15);
}

TEST(Retrieval, ParallelStreamsDivideTime) {
  const cloud::S3Model s3;
  const OutputSegmentation seg =
      OutputSegmentation::per_input_file(10'000, 100_MB, 0.5);
  const double seq = expected_retrieval_time(seg, s3).total.value();
  EXPECT_NEAR(parallel_retrieval_time(seg, s3, 10).value(), seq / 10.0,
              1e-9);
  EXPECT_THROW((void)parallel_retrieval_time(seg, s3, 0), Error);
}

TEST(Retrieval, EmptyOutputIsFree) {
  const cloud::S3Model s3;
  const OutputSegmentation none{};
  EXPECT_DOUBLE_EQ(expected_retrieval_time(none, s3).total.value(), 0.0);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(retrieval_time_sampled(none, s3, rng).value(), 0.0);
}

TEST(OutputSegmentation, InvalidInputsThrow) {
  EXPECT_THROW(
      (void)OutputSegmentation::per_input_file(10, 1_MB, -0.1), Error);
  EXPECT_THROW((void)OutputSegmentation::per_block(1_MB, 0_B, 1.0), Error);
}

}  // namespace
}  // namespace reshape::provision
