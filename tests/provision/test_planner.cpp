#include "provision/planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/distribution.hpp"

namespace reshape::provision {
namespace {

/// The paper's Eq. (3): f(x) = 0.327 + 0.865e-4 x (x in bytes).
model::Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return model::Predictor::fit(xs, ys);
}

corpus::Corpus gigabyte_corpus(std::uint64_t seed = 1) {
  Rng rng(seed);
  // ~1.09 GB of Text_400K-like files (enough files to sum to it).
  corpus::Corpus all =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 300'000, rng);
  return all.take_volume(Bytes(1'090'000'000));
}

TEST(StaticPlanner, OneHourDeadlineNeedsTwentySevenInstances) {
  // §5.2: D = 3600 under Eq. (3) prescribes 27 instances for the 1 GB set.
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kUniform;
  const ExecutionPlan plan = planner.plan(gigabyte_corpus(), options);
  EXPECT_EQ(plan.instance_count(), 27u);
  EXPECT_EQ(plan.strategy, PackingStrategy::kUniform);
  EXPECT_DOUBLE_EQ(plan.planning_deadline.value(), 3600.0);
}

TEST(StaticPlanner, TwoHourDeadlineNeedsFourteen) {
  // §5.2 / Fig. 9(a): D = 7200 under Eq. (3) gives 14 instances.
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 2_h;
  const ExecutionPlan plan = planner.plan(gigabyte_corpus(), options);
  EXPECT_EQ(plan.instance_count(), 14u);
}

TEST(StaticPlanner, LowerSlopeModelNeedsFewerInstances) {
  // Eq. (4) (slope 0.725e-4) prescribes 22 for 1 h and 11 for 2 h.
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(3.086 + 0.725482e-4 * v);
  }
  const StaticPlanner planner(model::Predictor::fit(xs, ys));
  PlanOptions options;
  options.deadline = 1_h;
  const corpus::Corpus data = gigabyte_corpus();
  EXPECT_EQ(planner.plan(data, options).instance_count(), 22u);
  options.deadline = 2_h;
  EXPECT_EQ(planner.plan(data, options).instance_count(), 11u);
}

TEST(StaticPlanner, PlanCoversWholeCorpusExactly) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  const corpus::Corpus data = gigabyte_corpus();
  for (const PackingStrategy strategy :
       {PackingStrategy::kFirstFit, PackingStrategy::kUniform}) {
    options.strategy = strategy;
    const ExecutionPlan plan = planner.plan(data, options);
    EXPECT_EQ(plan.total_volume(), data.total_volume());
    std::size_t files = 0;
    for (const Assignment& a : plan.assignments) files += a.file_count;
    EXPECT_EQ(files, data.file_count());
  }
}

TEST(StaticPlanner, UniformBinsAreBalanced) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kUniform;
  const ExecutionPlan plan = planner.plan(gigabyte_corpus(), options);
  Bytes lo = plan.assignments[0].volume, hi = plan.assignments[0].volume;
  for (const Assignment& a : plan.assignments) {
    lo = std::min(lo, a.volume);
    hi = std::max(hi, a.volume);
  }
  EXPECT_LT((hi - lo).as_double() / hi.as_double(), 0.05);
}

TEST(StaticPlanner, FirstFitFrontLoadsFullBins) {
  // Fig. 8(a): first-fit fills early bins to x0 and leaves the tail bin
  // light, so the spread is wide.
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kFirstFit;
  const ExecutionPlan plan = planner.plan(gigabyte_corpus(), options);
  Bytes lo = plan.assignments[0].volume, hi = plan.assignments[0].volume;
  for (const Assignment& a : plan.assignments) {
    lo = std::min(lo, a.volume);
    hi = std::max(hi, a.volume);
  }
  EXPECT_GT(hi.as_double() / std::max(1.0, lo.as_double()), 1.1);
  EXPECT_LE(hi, plan.per_instance_target);
}

TEST(StaticPlanner, UniformMakespanBelowFirstFit) {
  // The Fig. 8(a) -> 8(b) improvement.
  const StaticPlanner planner(eq3_predictor());
  const corpus::Corpus data = gigabyte_corpus();
  PlanOptions ff;
  ff.deadline = 1_h;
  ff.strategy = PackingStrategy::kFirstFit;
  PlanOptions uni = ff;
  uni.strategy = PackingStrategy::kUniform;
  EXPECT_LE(planner.plan(data, uni).predicted_makespan,
            planner.plan(data, ff).predicted_makespan);
}

TEST(StaticPlanner, AdjustedStrategyLowersPlanningDeadline) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kAdjusted;
  options.residuals.mean = 0.0;
  options.residuals.stddev = 0.1525 / 1.2816;
  const ExecutionPlan plan = planner.plan(gigabyte_corpus(), options);
  // D1 = 3600 / 1.1525 ~= 3124 (the paper's adjusted deadline).
  EXPECT_NEAR(plan.planning_deadline.value(), 3124.0, 5.0);
  EXPECT_LT(plan.planning_deadline, plan.deadline);
  // A tighter planning deadline can only need more instances.
  PlanOptions plain = options;
  plain.strategy = PackingStrategy::kUniform;
  EXPECT_GE(plan.instance_count(),
            planner.plan(gigabyte_corpus(), plain).instance_count());
}

TEST(StaticPlanner, PredictedCostUsesHourCeil) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kUniform;
  const ExecutionPlan plan = planner.plan(gigabyte_corpus(), options);
  // Every instance runs under an hour -> cost = instances * rate.
  EXPECT_NEAR(plan.predicted_cost.amount(),
              static_cast<double>(plan.instance_count()) * 0.085, 1e-9);
  EXPECT_DOUBLE_EQ(plan.predicted_instance_hours,
                   static_cast<double>(plan.instance_count()));
}

TEST(StaticPlanner, PredictedMakespanWithinPlanningDeadline) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kUniform;
  const ExecutionPlan plan = planner.plan(gigabyte_corpus(), options);
  EXPECT_LE(plan.predicted_makespan.value(),
            plan.planning_deadline.value() * 1.01);
}

TEST(StaticPlanner, ImpossibleDeadlinesThrow) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = Seconds(0.2);  // below even the intercept
  EXPECT_THROW((void)planner.plan(gigabyte_corpus(), options), Error);
  options.deadline = Seconds(0.0);
  EXPECT_THROW((void)planner.plan(gigabyte_corpus(), options), Error);
}

TEST(StaticPlanner, DeadlineBelowLargestFileThrows) {
  // A deadline tighter than the largest unsplittable file's processing
  // time cannot be met (§5: "D > time taken to process largest file").
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = Seconds(2.0);  // ~23 kB capacity; files reach 705 kB
  EXPECT_THROW((void)planner.plan(gigabyte_corpus(), options), Error);
}

TEST(StaticPlanner, EmptyCorpusThrows) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  EXPECT_THROW((void)planner.plan(corpus::Corpus(), options), Error);
}

TEST(PackingStrategyNames, Render) {
  EXPECT_EQ(to_string(PackingStrategy::kFirstFit), "first-fit");
  EXPECT_EQ(to_string(PackingStrategy::kAdjusted), "adjusted-deadline");
}

}  // namespace
}  // namespace reshape::provision
