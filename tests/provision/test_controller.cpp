#include "provision/controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/distribution.hpp"
#include "provision/dynamic.hpp"

namespace reshape::provision {
namespace {

model::Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return model::Predictor::fit(xs, ys);
}

corpus::Corpus data_40mb(std::uint64_t seed = 1) {
  Rng rng(seed);
  corpus::Corpus all =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 20'000, rng);
  return all.take_volume(40_MB);
}

/// A plan sized for ~600 s units but judged against a 1 h campaign
/// deadline, so fault recovery has slack to fit into — the regime where
/// hitting or missing the deadline is decided by the control policy.
ExecutionPlan slack_plan(const corpus::Corpus& data) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = Seconds(600.0);
  options.strategy = PackingStrategy::kUniform;
  ExecutionPlan plan = planner.plan(data, options);
  plan.deadline = 1_h;
  return plan;
}

cloud::ProviderConfig fast_config() {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  return config;
}

CampaignReport run_elastic(const cloud::ProviderConfig& config,
                           const ExecutionPlan& plan,
                           const ElasticOptions& elastic,
                           std::uint64_t provider_seed = 5,
                           std::uint64_t noise_seed = 3) {
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(provider_seed), config);
  Rng noise(noise_seed);
  return run_campaign(provider, plan, cloud::pos_profile(),
                      ExecutionOptions{}, elastic, noise);
}

// --- fault-free baseline ---------------------------------------------------

TEST(ElasticCampaign, FaultFreeCompletesEveryUnitWithinDeadline) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  const CampaignReport report =
      run_elastic(fast_config(), plan, ElasticOptions{});

  ASSERT_EQ(report.execution.outcomes.size(), plan.instance_count());
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_TRUE(o.met_deadline);
    EXPECT_GT(o.work_time.value(), 0.0);
  }
  EXPECT_EQ(report.execution.missed, 0u);
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate(), 1.0);

  // A healthy uniform fleet gives the controller nothing to do.
  EXPECT_EQ(report.stragglers_flagged, 0u);
  EXPECT_EQ(report.hedges_launched, 0u);
  EXPECT_EQ(report.acquisitions, 0u);
  EXPECT_EQ(report.cross_az_moves, 0u);
  EXPECT_EQ(report.units_shed, 0u);
  EXPECT_FALSE(report.degraded);
  EXPECT_EQ(report.execution.failures, 0u);

  // The epoch chain ran and re-planned (units run ~600 s, epochs are 300 s).
  ASSERT_GE(report.epochs.size(), 1u);
  EXPECT_EQ(report.replans, report.epochs.size());
  for (const EpochDecision& e : report.epochs) {
    EXPECT_TRUE(e.replanned);
    EXPECT_TRUE(e.flagged.empty());
    EXPECT_FALSE(e.degraded);
  }
}

TEST(ElasticCampaign, FaultFreeReleasesTheWholeFleet) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(5), fast_config());
  Rng noise(3);
  const CampaignReport report = run_campaign(
      provider, plan, cloud::pos_profile(), ExecutionOptions{},
      ElasticOptions{}, noise);
  EXPECT_GT(report.releases, 0u);
  for (std::uint64_t id = 1; id <= provider.launches(); ++id) {
    const cloud::InstanceState state =
        provider.instance(cloud::InstanceId{id}).state();
    EXPECT_TRUE(state == cloud::InstanceState::kTerminated ||
                state == cloud::InstanceState::kFailed)
        << "instance " << id << " leaked in state " << to_string(state);
  }
  EXPECT_GT(report.execution.cost.amount(), 0.0);
  EXPECT_GT(report.execution.instance_hours, 0.0);
}

TEST(ElasticCampaign, FaultFreeReplaysBitIdentically) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  const CampaignReport a = run_elastic(fast_config(), plan, ElasticOptions{});
  const CampaignReport b = run_elastic(fast_config(), plan, ElasticOptions{});
  EXPECT_DOUBLE_EQ(a.execution.makespan.value(), b.execution.makespan.value());
  EXPECT_DOUBLE_EQ(a.execution.cost.amount(), b.execution.cost.amount());
  EXPECT_EQ(a.epochs.size(), b.epochs.size());
  ASSERT_EQ(a.execution.outcomes.size(), b.execution.outcomes.size());
  for (std::size_t i = 0; i < a.execution.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.execution.outcomes[i].work_time.value(),
                     b.execution.outcomes[i].work_time.value());
  }
}

// --- straggler hedging -----------------------------------------------------

TEST(ElasticCampaign, HedgesStragglersAndTheHedgeWins) {
  cloud::ProviderConfig config;
  config.mixture.p_fast = 0.8;
  config.mixture.p_slow = 0.2;
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);

  ElasticOptions elastic;
  const CampaignReport hedged = run_elastic(config, plan, elastic, 77, 2);
  ASSERT_GE(hedged.stragglers_flagged, 1u)
      << "seed no longer draws a slow instance; pick another seed";
  EXPECT_GE(hedged.hedges_launched, 1u);
  EXPECT_GE(hedged.acquisitions, hedged.hedges_launched);
  EXPECT_GE(hedged.speculative_wins, 1u);
  for (const InstanceOutcome& o : hedged.execution.outcomes) {
    EXPECT_TRUE(o.completed);
  }

  // Against the same world with hedging off, the race pays for itself.
  ElasticOptions unhedged = elastic;
  unhedged.hedge_stragglers = false;
  const CampaignReport base = run_elastic(config, plan, unhedged, 77, 2);
  EXPECT_EQ(base.hedges_launched, 0u);
  EXPECT_LT(hedged.execution.makespan.value(), base.execution.makespan.value());
}

// --- crash storms ----------------------------------------------------------

cloud::ProviderConfig crashy_config(double crash_rate) {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  config.faults.crash_rate_per_hour = crash_rate;
  return config;
}

TEST(ElasticCampaign, CrashStormRecoversEveryUnit) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  const CampaignReport report =
      run_elastic(crashy_config(6.0), plan, ElasticOptions{}, 31, 1);
  ASSERT_GE(report.execution.failures, 1u)
      << "seed no longer injects a crash; pick another seed";
  EXPECT_GE(report.acquisitions, 1u);
  EXPECT_GT(report.execution.recovery_time.value(), 0.0);
  EXPECT_EQ(report.execution.abandoned, 0u);
  EXPECT_EQ(report.units_shed, 0u);
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_TRUE(o.completed);
  }
}

TEST(ElasticCampaign, CrashStormReplaysBitIdentically) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  const CampaignReport a =
      run_elastic(crashy_config(6.0), plan, ElasticOptions{}, 31, 1);
  const CampaignReport b =
      run_elastic(crashy_config(6.0), plan, ElasticOptions{}, 31, 1);
  EXPECT_EQ(a.execution.failures, b.execution.failures);
  EXPECT_EQ(a.acquisitions, b.acquisitions);
  EXPECT_EQ(a.stragglers_flagged, b.stragglers_flagged);
  EXPECT_EQ(a.epochs.size(), b.epochs.size());
  EXPECT_DOUBLE_EQ(a.execution.makespan.value(), b.execution.makespan.value());
  ASSERT_EQ(a.execution.outcomes.size(), b.execution.outcomes.size());
  for (std::size_t i = 0; i < a.execution.outcomes.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.execution.outcomes[i].work_time.value(),
                     b.execution.outcomes[i].work_time.value());
    EXPECT_EQ(a.execution.outcomes[i].failures,
              b.execution.outcomes[i].failures);
  }
}

// --- AZ outage escape ------------------------------------------------------

TEST(ElasticCampaign, AzOutageTriggersCrossAzReplacement) {
  cloud::ProviderConfig config = fast_config();
  config.faults.p_az_outage = 1.0;
  config.faults.az_outage_spread = Seconds(600.0);
  config.faults.az_outage_mean = Seconds(7200.0);  // outage outlives the run
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  const CampaignReport report =
      run_elastic(config, plan, ElasticOptions{}, 11, 4);
  ASSERT_GE(report.cross_az_moves, 1u)
      << "seed strikes before any volume exists; pick another seed";
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_TRUE(o.completed);
    EXPECT_TRUE(o.met_deadline);
  }
  EXPECT_EQ(report.execution.missed, 0u);
  EXPECT_GE(report.acquisitions, 1u);
}

// --- graceful degradation --------------------------------------------------

/// A world where no instance ever boots: every zone's outage starts
/// within the first second and outlives the horizon, so each boot lands
/// inside a dead zone and fails — deterministic doom without needing the
/// (disallowed) p_boot_failure = 1.
cloud::ProviderConfig doomed_config() {
  cloud::ProviderConfig config = fast_config();
  config.faults.p_az_outage = 1.0;
  config.faults.az_outage_spread = Seconds(1.0);
  config.faults.az_outage_mean = Seconds(36'000.0);
  config.boot_mean = Seconds(30.0);
  config.boot_stddev = Seconds(1.0);
  config.boot_min = Seconds(20.0);
  return config;
}

ElasticOptions doomed_options(DegradePolicy policy) {
  ElasticOptions elastic;
  elastic.epoch = Seconds(60.0);
  elastic.acquisition_budget = 0;
  elastic.degrade = policy;
  return elastic;
}

TEST(ElasticCampaign, ShedsLowestValueFirstWithIndexTiebreak) {
  const corpus::Corpus data = data_40mb();
  ExecutionPlan plan = slack_plan(data);
  ASSERT_GE(plan.assignments.size(), 3u);
  for (std::size_t i = 0; i < plan.assignments.size(); ++i) {
    plan.assignments[i].value = static_cast<double>(i % 3);
  }

  const CampaignReport report = run_elastic(
      doomed_config(), plan, doomed_options(DegradePolicy::kShedLowestValue));

  // Everything was shed, exactly once each, and reported.
  EXPECT_TRUE(report.degraded);
  EXPECT_EQ(report.units_shed, plan.assignments.size());
  ASSERT_EQ(report.shed_units.size(), plan.assignments.size());
  EXPECT_TRUE(std::is_sorted(report.shed_units.begin(),
                             report.shed_units.end()));
  EXPECT_DOUBLE_EQ(report.deadline_hit_rate(), 0.0);
  EXPECT_EQ(report.bytes_shed.count(), plan.total_volume().count());
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_FALSE(o.completed);
    EXPECT_EQ(o.error.rfind("shed:", 0), 0u) << o.error;
  }

  // The shedding epoch ordered victims by ascending value, ties broken by
  // shedding the higher index first.
  std::vector<std::size_t> order;
  for (const EpochDecision& e : report.epochs) {
    order.insert(order.end(), e.shed_units.begin(), e.shed_units.end());
  }
  ASSERT_EQ(order.size(), plan.assignments.size());
  std::vector<std::size_t> expected(order.size());
  for (std::size_t i = 0; i < expected.size(); ++i) expected[i] = i;
  std::stable_sort(expected.begin(), expected.end(),
                   [&](std::size_t a, std::size_t b) {
                     const double va = plan.assignments[a].value;
                     const double vb = plan.assignments[b].value;
                     if (va != vb) return va < vb;
                     return a > b;
                   });
  EXPECT_EQ(order, expected);
}

TEST(ElasticCampaign, WidenPolicyWidensInsteadOfShedding) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  const CampaignReport report = run_elastic(
      doomed_config(), plan, doomed_options(DegradePolicy::kWidenMergeUnits));
  EXPECT_TRUE(report.degraded);
  EXPECT_TRUE(report.widened_units);
  EXPECT_EQ(report.units_shed, 0u);
  // With no fleet and no budget the stranded units resolve as abandoned,
  // not shed: widening never drops work.
  EXPECT_EQ(report.execution.abandoned, plan.instance_count());
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_FALSE(o.completed);
    EXPECT_FALSE(o.error.empty());
  }
}

TEST(ElasticCampaign, OvershootPolicyAcquiresPastTheBudget) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  ElasticOptions elastic;
  elastic.acquisition_budget = 0;  // the hard budget forbids every launch…
  elastic.degrade = DegradePolicy::kOvershootCost;
  const CampaignReport report =
      run_elastic(crashy_config(6.0), plan, elastic, 31, 1);
  ASSERT_GE(report.execution.failures, 1u)
      << "seed no longer injects a crash; pick another seed";
  // …but the overshoot policy swaps it for the cost cap and keeps going.
  EXPECT_GE(report.acquisitions, 1u);
  EXPECT_EQ(report.units_shed, 0u);
  for (const InstanceOutcome& o : report.execution.outcomes) {
    EXPECT_TRUE(o.completed);
  }
}

// --- wiring through the dynamic rescheduler --------------------------------

TEST(DynamicElastic, EpochsOneRunsTheLegacyRescheduler) {
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(5), fast_config());
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  Rng noise(3);
  ReschedulingOptions options;  // epochs = 1
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_FALSE(report.elastic);
  EXPECT_TRUE(report.campaign.epochs.empty());
  EXPECT_EQ(report.execution.instance_count(), plan.instance_count());
}

TEST(DynamicElastic, MultipleEpochsDelegateToTheController) {
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(5), fast_config());
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  Rng noise(3);
  ReschedulingOptions options;
  options.epochs = 6;  // epoch period = deadline / 6 = 600 s
  const DynamicReport report = execute_with_rescheduling(
      provider, plan, cloud::pos_profile(), options, noise);
  EXPECT_TRUE(report.elastic);
  EXPECT_TRUE(report.replacements.empty());
  EXPECT_EQ(report.execution.instance_count(), plan.instance_count());
  EXPECT_GE(report.campaign.replans, 1u);
  // The executor-shaped view mirrors the campaign's.
  EXPECT_DOUBLE_EQ(report.execution.makespan.value(),
                   report.campaign.execution.makespan.value());
  EXPECT_EQ(report.execution.missed, report.campaign.execution.missed);
}

}  // namespace
}  // namespace reshape::provision
