#include "provision/cost.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace reshape::provision {
namespace {

constexpr Dollars kRate{0.085};

TEST(CostForDeadline, WholeHourDeadlineBillsCeilOfWork) {
  // d >= 1: f(d) = r * ceil(P).
  EXPECT_NEAR(cost_for_deadline(Seconds(3600.0), 1_h, kRate).amount(), 0.085,
              1e-12);
  EXPECT_NEAR(cost_for_deadline(Seconds(3601.0), 2_h, kRate).amount(),
              2 * 0.085, 1e-12);
  EXPECT_NEAR(cost_for_deadline(Seconds(9.5 * 3600.0), 1_h, kRate).amount(),
              10 * 0.085, 1e-12);
}

TEST(CostForDeadline, SubHourDeadlinePaysFullHoursForPartialWork) {
  // d < 1: f(d) = r * ceil(P / d) — every instance works d, bills 1 h.
  EXPECT_NEAR(
      cost_for_deadline(Seconds(3600.0), Seconds(1800.0), kRate).amount(),
      2 * 0.085, 1e-12);
  EXPECT_NEAR(
      cost_for_deadline(Seconds(3600.0), Seconds(900.0), kRate).amount(),
      4 * 0.085, 1e-12);
  // Sub-hour deadlines are strictly more expensive than the 1-hour plan.
  EXPECT_GT(cost_for_deadline(10_h, Seconds(1800.0), kRate),
            cost_for_deadline(10_h, 1_h, kRate));
}

TEST(CostForDeadline, DeadlineBeyondOneHourDoesNotChangeCost) {
  // With linear work and hour-granular billing, packing an hour into each
  // instance is already optimal: f is flat for d >= 1.
  const Seconds work(7.3 * 3600.0);
  EXPECT_EQ(cost_for_deadline(work, 1_h, kRate),
            cost_for_deadline(work, 5_h, kRate));
}

TEST(CostForDeadline, ZeroWorkIsFree) {
  EXPECT_DOUBLE_EQ(cost_for_deadline(Seconds(0.0), 1_h, kRate).amount(), 0.0);
}

TEST(InstanceHours, Matches) {
  EXPECT_DOUBLE_EQ(instance_hours_for_deadline(Seconds(3600.0 * 2.5), 1_h),
                   3.0);
  EXPECT_DOUBLE_EQ(
      instance_hours_for_deadline(Seconds(3600.0), Seconds(1200.0)), 3.0);
}

TEST(CostForDeadline, InvalidInputsThrow) {
  EXPECT_THROW((void)cost_for_deadline(Seconds(-1.0), 1_h, kRate), Error);
  EXPECT_THROW((void)cost_for_deadline(1_h, Seconds(0.0), kRate), Error);
}

TEST(InstancesNeeded, CeilDivision) {
  EXPECT_EQ(instances_needed(1_GB, 100_MB), 10u);
  EXPECT_EQ(instances_needed(Bytes((1_GB).count() + 1), 100_MB), 11u);
  EXPECT_EQ(instances_needed(0_B, 100_MB), 0u);
  EXPECT_THROW((void)instances_needed(1_GB, 0_B), Error);
}

TEST(SwitchGain, MatchesPaperCalculation) {
  // §3.1: a slow instance at 60 MB/s processes ~216 GB in the next hour;
  // switching with a 3-minute penalty to an ~80 MB/s instance still nets
  // ~57 GB extra (80e6 * 3420 s - 216 GB = 57.6 GB).
  const Rate slow = Rate::megabytes_per_second(60.0);
  const Rate fast = Rate::megabytes_per_second(80.0);
  const Bytes gain = switch_gain(slow, fast, 3_min);
  EXPECT_NEAR(gain.gigabytes(), 57.0, 3.0);
}

TEST(SwitchGain, NoGainWhenReplacementIsSlower) {
  EXPECT_EQ(switch_gain(Rate::megabytes_per_second(60.0),
                        Rate::megabytes_per_second(55.0), 3_min),
            0_B);
}

TEST(SwitchGain, PenaltyLongerThanHourYieldsZero) {
  EXPECT_EQ(switch_gain(Rate::megabytes_per_second(10.0),
                        Rate::megabytes_per_second(100.0), 2_h),
            0_B);
}

}  // namespace
}  // namespace reshape::provision
