// The chaos differential suite: seeded fault storms replayed through both
// the static executor (the paper's one-shot fleet, bounded same-zone
// relaunches) and the elastic campaign controller, on identical worlds.
//
// Acceptance criteria, per ISSUE 7:
//   * across the storm grid the controller's deadline-hit rate strictly
//     exceeds the static rescheduler's (the AZ-outage cells are where the
//     separation comes from: static relaunches into the dead zone until
//     its screening budget exhausts; elastic escapes cross-AZ);
//   * no lost or duplicated units — every unit resolves exactly once as
//     completed, shed or abandoned (the completion-once and digest
//     invariants are RESHAPE_REQUIREd inside the controller, so a finished
//     run is itself the proof);
//   * billing stays consistent: every launched instance ends terminated or
//     failed, and the meter's cost/hour totals are positive and replayable.
#include <gtest/gtest.h>

#include <algorithm>

#include "corpus/distribution.hpp"
#include "provision/controller.hpp"

namespace reshape::provision {
namespace {

model::Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return model::Predictor::fit(xs, ys);
}

corpus::Corpus data_40mb() {
  Rng rng(1);
  corpus::Corpus all =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 20'000, rng);
  return all.take_volume(40_MB);
}

/// ~600 s units against a 1 h campaign deadline: enough slack that the
/// deadline is decided by the recovery policy, not by the raw work.
ExecutionPlan slack_plan(const corpus::Corpus& data) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = Seconds(600.0);
  options.strategy = PackingStrategy::kUniform;
  ExecutionPlan plan = planner.plan(data, options);
  plan.deadline = 1_h;
  return plan;
}

struct Storm {
  const char* name;
  cloud::FaultModel faults;
};

std::vector<Storm> storm_grid() {
  std::vector<Storm> storms;
  {
    // Each zone independently has a 70% chance of a long outage striking
    // inside the unit runtime: the primary usually dies, but an escape
    // zone usually exists — the regime where cross-AZ replacement pays.
    Storm s{"az-outage", {}};
    s.faults.p_az_outage = 0.7;
    s.faults.az_outage_spread = Seconds(600.0);
    s.faults.az_outage_mean = Seconds(7200.0);  // outlives the campaign
    storms.push_back(s);
  }
  {
    Storm s{"spot-wave", {}};
    s.faults.spot_interruption_rate_per_hour = 12.0;
    storms.push_back(s);
  }
  {
    Storm s{"crash-storm", {}};
    s.faults.crash_rate_per_hour = 10.0;
    storms.push_back(s);
  }
  return storms;
}

constexpr std::uint64_t kSeeds[] = {11, 23, 47};

cloud::ProviderConfig storm_config(const Storm& storm) {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  config.faults = storm.faults;
  return config;
}

ExecutionReport run_static(const Storm& storm, const ExecutionPlan& plan,
                           std::uint64_t seed) {
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(seed), storm_config(storm));
  Rng noise(seed + 1000);
  return execute_plan(provider, plan, cloud::pos_profile(),
                      ExecutionOptions{}, noise);
}

CampaignReport run_elastic(const Storm& storm, const ExecutionPlan& plan,
                           std::uint64_t seed) {
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(seed), storm_config(storm));
  Rng noise(seed + 1000);
  return run_campaign(provider, plan, cloud::pos_profile(),
                      ExecutionOptions{}, ElasticOptions{}, noise);
}

std::size_t hits(const ExecutionReport& report) {
  std::size_t n = 0;
  for (const InstanceOutcome& o : report.outcomes) {
    if (o.met_deadline) ++n;
  }
  return n;
}

/// Exactly-once resolution: completed, shed and abandoned partition the
/// unit set.
void check_unit_conservation(const CampaignReport& report,
                             const ExecutionPlan& plan) {
  ASSERT_EQ(report.execution.outcomes.size(), plan.instance_count());
  std::size_t completed = 0;
  for (const InstanceOutcome& o : report.execution.outcomes) {
    if (o.completed) {
      ++completed;
      EXPECT_TRUE(o.error.empty());
    } else {
      EXPECT_FALSE(o.error.empty());
    }
  }
  EXPECT_EQ(completed + report.units_shed + report.execution.abandoned,
            plan.instance_count());
  EXPECT_EQ(report.shed_units.size(), report.units_shed);
  EXPECT_TRUE(std::is_sorted(report.shed_units.begin(),
                             report.shed_units.end()));
  EXPECT_TRUE(std::adjacent_find(report.shed_units.begin(),
                                 report.shed_units.end()) ==
              report.shed_units.end());
  for (const std::size_t index : report.shed_units) {
    EXPECT_LT(index, plan.instance_count());
    EXPECT_FALSE(report.execution.outcomes[index].completed);
  }
}

TEST(ChaosCampaign, ElasticBeatsStaticAcrossTheStormGrid) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  std::size_t static_hits = 0;
  std::size_t elastic_hits = 0;
  std::size_t cells = 0;
  for (const Storm& storm : storm_grid()) {
    for (const std::uint64_t seed : kSeeds) {
      SCOPED_TRACE(::testing::Message()
                   << "storm=" << storm.name << " seed=" << seed);
      const ExecutionReport st = run_static(storm, plan, seed);
      const CampaignReport el = run_elastic(storm, plan, seed);
      check_unit_conservation(el, plan);
      static_hits += hits(st);
      elastic_hits += hits(el.execution);
      ++cells;
    }
  }
  ASSERT_EQ(cells, 9u);
  // The tentpole claim: strictly better deadline-hit rate over the grid.
  EXPECT_GT(elastic_hits, static_hits)
      << "elastic=" << elastic_hits << " static=" << static_hits << " of "
      << cells * plan.instance_count();
  // And the grid actually stressed something.
  EXPECT_LT(static_hits, cells * plan.instance_count());
}

TEST(ChaosCampaign, AzOutageCellsSeparateThePolicies) {
  // In the AZ-outage storm, the static executor's same-zone relaunch loop
  // cannot escape the episode; the controller must hit what static misses.
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  const Storm storm = storm_grid()[0];
  ASSERT_STREQ(storm.name, "az-outage");
  std::size_t static_hits = 0;
  std::size_t elastic_hits = 0;
  std::size_t moves = 0;
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const ExecutionReport st = run_static(storm, plan, seed);
    const CampaignReport el = run_elastic(storm, plan, seed);
    static_hits += hits(st);
    elastic_hits += hits(el.execution);
    moves += el.cross_az_moves;
  }
  EXPECT_GT(elastic_hits, static_hits);
  EXPECT_GE(moves, 1u) << "no campaign ever moved cross-AZ";
}

TEST(ChaosCampaign, BillingStaysConsistentUnderStorms) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  for (const Storm& storm : storm_grid()) {
    SCOPED_TRACE(storm.name);
    sim::Simulation sim;
    cloud::CloudProvider provider(sim, Rng(23), storm_config(storm));
    Rng noise(23 + 1000);
    const CampaignReport report =
        run_campaign(provider, plan, cloud::pos_profile(), ExecutionOptions{},
                     ElasticOptions{}, noise);
    // Every launched instance reached a terminal state: nothing keeps
    // billing after the campaign ends.
    for (std::uint64_t id = 1; id <= provider.launches(); ++id) {
      const cloud::InstanceState state =
          provider.instance(cloud::InstanceId{id}).state();
      EXPECT_TRUE(state == cloud::InstanceState::kTerminated ||
                  state == cloud::InstanceState::kFailed)
          << "instance " << id << " left in state " << to_string(state);
    }
    EXPECT_GT(report.execution.cost.amount(), 0.0);
    EXPECT_GT(report.execution.instance_hours, 0.0);
    // The report's numbers are the meter's numbers.
    const Seconds now = provider.sim().now();
    EXPECT_DOUBLE_EQ(report.execution.cost.amount(),
                     provider.billing().total_cost(now).amount());
    EXPECT_DOUBLE_EQ(report.execution.instance_hours,
                     provider.billing().instance_hours(now));
  }
}

TEST(ChaosCampaign, StormCellsReplayBitIdentically) {
  const corpus::Corpus data = data_40mb();
  const ExecutionPlan plan = slack_plan(data);
  for (const Storm& storm : storm_grid()) {
    SCOPED_TRACE(storm.name);
    const CampaignReport a = run_elastic(storm, plan, 47);
    const CampaignReport b = run_elastic(storm, plan, 47);
    EXPECT_EQ(a.execution.failures, b.execution.failures);
    EXPECT_EQ(a.acquisitions, b.acquisitions);
    EXPECT_EQ(a.cross_az_moves, b.cross_az_moves);
    EXPECT_EQ(a.units_shed, b.units_shed);
    EXPECT_EQ(a.shed_units, b.shed_units);
    EXPECT_EQ(a.epochs.size(), b.epochs.size());
    EXPECT_DOUBLE_EQ(a.execution.makespan.value(),
                     b.execution.makespan.value());
    EXPECT_DOUBLE_EQ(a.execution.cost.amount(), b.execution.cost.amount());
    ASSERT_EQ(a.execution.outcomes.size(), b.execution.outcomes.size());
    for (std::size_t i = 0; i < a.execution.outcomes.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.execution.outcomes[i].work_time.value(),
                       b.execution.outcomes[i].work_time.value());
      EXPECT_EQ(a.execution.outcomes[i].completed,
                b.execution.outcomes[i].completed);
    }
  }
}

}  // namespace
}  // namespace reshape::provision
