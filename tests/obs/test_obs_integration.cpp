// End-to-end observability contract, checked on a real seeded campaign:
//
//  1. Determinism — the same seeded faulty run, recorded twice, exports a
//     byte-identical Chrome trace and metrics snapshot.
//  2. Schema — the exported trace is well-formed Chrome trace-event JSON
//     (parseable, known phases, integral sim-time stamps).
//  3. Passivity — recording on vs off does not change a single number in
//     the execution report (the registry backs the report's counters, so
//     this also pins the dedup refactor).
//
// All of these drive the *global* recorder, so they skip when the build
// compiled the recording sites out (RESHAPE_OBS=OFF); the unit tests in
// test_trace.cpp / test_metrics.cpp still cover the types there.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cloud/faults.hpp"
#include "cloud/provider.hpp"
#include "corpus/distribution.hpp"
#include "json_lite.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "provision/executor.hpp"
#include "provision/planner.hpp"
#include "sim/simulation.hpp"

namespace reshape::provision {
namespace {

namespace json = reshape::testjson;

model::Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return model::Predictor::fit(xs, ys);
}

corpus::Corpus small_gig() {
  Rng rng(1);
  corpus::Corpus all =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 60'000, rng);
  return all.take_volume(200_MB);
}

ExecutionPlan uniform_plan(const corpus::Corpus& data) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = 1_h;
  options.strategy = PackingStrategy::kUniform;
  return planner.plan(data, options);
}

cloud::FaultModel storm() {
  cloud::FaultModel faults;
  faults.p_boot_failure = 0.15;
  faults.crash_rate_per_hour = 1.0;
  faults.spot_interruption_rate_per_hour = 0.25;
  faults.p_ebs_degradation = 0.3;
  faults.p_transfer_error = 0.1;
  return faults;
}

ExecutionReport run_campaign(const ExecutionPlan& plan,
                             const cloud::FaultModel& faults) {
  sim::Simulation sim;
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  config.faults = faults;
  cloud::CloudProvider ec2(sim, Rng(404), config);
  ExecutionOptions options;
  options.data_on_ebs = true;
  options.relaunch_threshold = Rate::megabytes_per_second(55.0);
  options.max_relaunches = 10;
  options.output_ratio = 0.1;
  Rng noise(17);
  return execute_plan(ec2, plan, cloud::grep_profile(), options, noise);
}

struct Recorded {
  ExecutionReport report;
  std::string trace_json;
  std::string metrics_json;
};

Recorded record_campaign(const ExecutionPlan& plan,
                         const cloud::FaultModel& faults) {
  obs::reset();
  obs::set_enabled(true);
  Recorded out;
  out.report = run_campaign(plan, faults);
  obs::set_enabled(false);
  out.trace_json = obs::trace().to_chrome_json();
  out.metrics_json = obs::metrics().to_json();
  obs::reset();
  return out;
}

TEST(ObsIntegrationTest, SeededFaultyRunReplaysToIdenticalArtifacts) {
  if (!obs::compiled_in()) GTEST_SKIP() << "recording sites compiled out";
  const ExecutionPlan plan = uniform_plan(small_gig());
  const Recorded a = record_campaign(plan, storm());
  const Recorded b = record_campaign(plan, storm());
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.report.failures, b.report.failures);
  EXPECT_EQ(a.report.makespan, b.report.makespan);
}

TEST(ObsIntegrationTest, CampaignTraceIsWellFormedChromeJson) {
  if (!obs::compiled_in()) GTEST_SKIP() << "recording sites compiled out";
  const ExecutionPlan plan = uniform_plan(small_gig());
  const Recorded rec = record_campaign(plan, storm());

  const json::Value doc = json::parse(rec.trace_json);
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const json::Array& events = doc.at("traceEvents").as_array();
  // A faulty campaign must leave a real footprint: boots, transfers,
  // failures.  (The exact count is pinned by the determinism test.)
  EXPECT_GT(events.size(), 20u);
  std::size_t spans = 0, instants = 0;
  bool saw_boot = false, saw_transfer = false;
  for (const json::Value& e : events) {
    const std::string& ph = e.at("ph").string;
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "M") << ph;
    if (ph == "X") {
      ++spans;
      const double ts = e.at("ts").number;
      const double dur = e.at("dur").number;
      EXPECT_EQ(ts, static_cast<double>(static_cast<long long>(ts)));
      EXPECT_GE(dur, 0.0);
      if (e.at("name").string == "boot") saw_boot = true;
      if (e.at("cat").string == "transfer") saw_transfer = true;
    }
    if (ph == "i") {
      ++instants;
      EXPECT_EQ(e.at("s").string, "t");
    }
  }
  EXPECT_GT(spans, 0u);
  EXPECT_GT(instants, 0u);
  EXPECT_TRUE(saw_boot);
  EXPECT_TRUE(saw_transfer);

  // The metrics snapshot agrees with the report on the headline counts.
  const json::Value metrics = json::parse(rec.metrics_json);
  const json::Value& counters = metrics.at("counters");
  EXPECT_EQ(counters.at("executor.failures").number,
            static_cast<double>(rec.report.failures));
  EXPECT_EQ(counters.at("executor.redistributions").number,
            static_cast<double>(rec.report.redistributions));
}

TEST(ObsIntegrationTest, RecordingDoesNotPerturbTheReport) {
  const ExecutionPlan plan = uniform_plan(small_gig());

  const ExecutionReport off = run_campaign(plan, storm());
  ExecutionReport on;
  if (obs::compiled_in()) {
    on = record_campaign(plan, storm()).report;
  } else {
    on = run_campaign(plan, storm());
  }

  EXPECT_EQ(off.failures, on.failures);
  EXPECT_EQ(off.relaunches, on.relaunches);
  EXPECT_EQ(off.redistributions, on.redistributions);
  EXPECT_EQ(off.abandoned, on.abandoned);
  EXPECT_EQ(off.missed, on.missed);
  EXPECT_EQ(off.transfer_retries, on.transfer_retries);
  EXPECT_EQ(off.corruptions_detected, on.corruptions_detected);
  EXPECT_DOUBLE_EQ(off.recovery_time.value(), on.recovery_time.value());
  EXPECT_DOUBLE_EQ(off.transfer_retry_time.value(),
                   on.transfer_retry_time.value());
  EXPECT_DOUBLE_EQ(off.makespan.value(), on.makespan.value());
  EXPECT_DOUBLE_EQ(off.cost.amount(), on.cost.amount());
  ASSERT_EQ(off.outcomes.size(), on.outcomes.size());
  for (std::size_t i = 0; i < off.outcomes.size(); ++i) {
    EXPECT_EQ(off.outcomes[i].completed, on.outcomes[i].completed);
    EXPECT_EQ(off.outcomes[i].failures, on.outcomes[i].failures);
    EXPECT_DOUBLE_EQ(off.outcomes[i].exec_time.value(),
                     on.outcomes[i].exec_time.value());
  }
}

TEST(ObsIntegrationTest, BenignRunRecordsNoFailureEvents) {
  if (!obs::compiled_in()) GTEST_SKIP() << "recording sites compiled out";
  const ExecutionPlan plan = uniform_plan(small_gig());
  const Recorded rec = record_campaign(plan, cloud::FaultModel{});
  const json::Value metrics = json::parse(rec.metrics_json);
  const json::Value& counters = metrics.at("counters");
  EXPECT_EQ(counters.at("executor.failures").number, 0.0);
  EXPECT_EQ(counters.at("instance.launches").number,
            static_cast<double>(plan.instance_count()));
  // Every span in a benign trace still parses; no crash instants appear.
  const json::Value doc = json::parse(rec.trace_json);
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").string == "i") {
      EXPECT_NE(e.at("name").string, "crash");
    }
  }
}

}  // namespace
}  // namespace reshape::provision
