#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "json_lite.hpp"

namespace reshape::obs {
namespace {

namespace json = reshape::testjson;

TEST(CounterTest, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add(1);
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetsAndAccumulates) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(0.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 4.0});
  // Bucket i covers (bounds[i-1], bounds[i]]; the last is the overflow.
  EXPECT_EQ(h.bucket_index(0.5), 0u);
  EXPECT_EQ(h.bucket_index(1.0), 0u);  // upper bound is inclusive
  EXPECT_EQ(h.bucket_index(1.0000001), 1u);
  EXPECT_EQ(h.bucket_index(2.0), 1u);
  EXPECT_EQ(h.bucket_index(4.0), 2u);
  EXPECT_EQ(h.bucket_index(4.0000001), 3u);  // overflow bucket
  EXPECT_EQ(h.bucket_index(1e30), 3u);

  h.observe(0.5);
  h.observe(1.0);
  h.observe(3.0);
  h.observe(100.0);
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 3u);
  ASSERT_EQ(snap.counts.size(), 4u);
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 0u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 104.5);
}

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, MergeRequiresIdenticalBounds) {
  Histogram a({1.0, 10.0});
  Histogram b({1.0, 10.0});
  Histogram c({1.0, 5.0});
  a.observe(0.5);
  b.observe(7.0);
  b.observe(20.0);
  a.merge(b);
  const HistogramSnapshot merged = a.snapshot();
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.counts[0], 1u);
  EXPECT_EQ(merged.counts[1], 1u);
  EXPECT_EQ(merged.counts[2], 1u);
  EXPECT_DOUBLE_EQ(merged.sum, 27.5);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(MetricsRegistryTest, LookupIsStableAndCreateOnFirstUse) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);  // same instrument, stable reference
  a.add(3);
  EXPECT_EQ(reg.counter_value("x"), 3u);
  EXPECT_EQ(reg.counter_value("never-created"), 0u);
}

TEST(MetricsRegistryTest, HistogramReRegistrationWithSameBoundsIsStable) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  Histogram& again = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.snapshot().bounds, (std::vector<double>{1.0, 2.0}));
}

// Regression: a histogram lookup with mismatched bounds used to silently
// return the existing instrument, handing the caller surprising buckets.
// It must fail loudly so the bad registration site gets fixed.
TEST(MetricsRegistryTest, HistogramReRegistrationWithDifferentBoundsThrows) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0});
  h.observe(1.5);
  EXPECT_THROW(reg.histogram("h", {5.0, 6.0}), std::invalid_argument);
  EXPECT_THROW(reg.histogram("h", {1.0}), std::invalid_argument);
  // The failed lookups left the instrument untouched.
  EXPECT_EQ(reg.histogram("h", {1.0, 2.0}).snapshot().count, 1u);
}

TEST(MetricsRegistryTest, MergeWithMismatchedHistogramBoundsThrows) {
  MetricsRegistry a, b;
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  b.histogram("h", {3.0, 4.0}).observe(3.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(MetricsRegistryTest, JsonSnapshotIsSortedAndParses) {
  MetricsRegistry reg;
  reg.counter("z.last").add(1);
  reg.counter("a.first").add(2);
  reg.gauge("m.middle").set(0.5);
  reg.histogram("h", {1.0}).observe(0.25);
  const std::string out = reg.to_json();
  // Deterministic ordering: names sorted within each section.
  EXPECT_LT(out.find("a.first"), out.find("z.last"));
  const json::Value doc = json::parse(out);
  EXPECT_EQ(doc.at("counters").at("a.first").number, 2.0);
  EXPECT_EQ(doc.at("counters").at("z.last").number, 1.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("m.middle").number, 0.5);
  const json::Value& h = doc.at("histograms").at("h");
  EXPECT_EQ(h.at("count").number, 1.0);
  EXPECT_EQ(h.at("counts").as_array().size(), 2u);
}

TEST(MetricsRegistryTest, MergeFoldsEverySection) {
  MetricsRegistry a, b;
  a.counter("c").add(1);
  b.counter("c").add(2);
  b.counter("only-b").add(7);
  b.gauge("g").set(1.5);
  b.histogram("h", {1.0}).observe(0.5);
  a.merge(b);
  EXPECT_EQ(a.counter_value("c"), 3u);
  EXPECT_EQ(a.counter_value("only-b"), 7u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 1.5);
  EXPECT_EQ(a.histogram("h", {1.0}).snapshot().count, 1u);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  c.add(5);
  reg.histogram("h", {1.0}).observe(2.0);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.histogram("h", {1.0}).snapshot().count, 0u);
  // The reference stays valid across reset (unlike clear()).
  c.add(1);
  EXPECT_EQ(reg.counter_value("c"), 1u);
}

}  // namespace
}  // namespace reshape::obs
