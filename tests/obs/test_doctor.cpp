// Golden-report test for the campaign doctor on the doomed world from
// the controller suite: a certain AZ outage plus a zero acquisition
// budget, so no instance ever boots and the first 60 s epoch sheds every
// unit.  That world is fully deterministic, which lets the test pin the
// doctor's two headline conclusions — the dominant phase is acquisition
// (every unit spent its whole life waiting for a boot) and the
// degradation decision was shed-lowest-value — and the byte-identity of
// the rendered report across runs.
//
// Drives the global recorder, so it skips under -DRESHAPE_OBS=OFF.

#include "obs/profile/doctor.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corpus/distribution.hpp"
#include "json_lite.hpp"
#include "obs/profile/trace_index.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"
#include "provision/controller.hpp"

namespace reshape::provision {
namespace {

namespace json = reshape::testjson;
namespace profile = reshape::obs::profile;

model::Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return model::Predictor::fit(xs, ys);
}

corpus::Corpus data_40mb() {
  Rng rng(1);
  corpus::Corpus all =
      corpus::Corpus::generate(corpus::text_400k_sizes(), 20'000, rng);
  return all.take_volume(40_MB);
}

ExecutionPlan slack_plan(const corpus::Corpus& data) {
  const StaticPlanner planner(eq3_predictor());
  PlanOptions options;
  options.deadline = Seconds(600.0);
  options.strategy = PackingStrategy::kUniform;
  ExecutionPlan plan = planner.plan(data, options);
  plan.deadline = 1_h;
  return plan;
}

cloud::ProviderConfig doomed_config() {
  cloud::ProviderConfig config;
  config.mixture = cloud::uniform_fast_mixture();
  config.faults.p_az_outage = 1.0;
  config.faults.az_outage_spread = Seconds(1.0);
  config.faults.az_outage_mean = Seconds(36'000.0);
  config.boot_mean = Seconds(30.0);
  config.boot_stddev = Seconds(1.0);
  config.boot_min = Seconds(20.0);
  return config;
}

ElasticOptions doomed_options() {
  ElasticOptions elastic;
  elastic.epoch = Seconds(60.0);
  elastic.acquisition_budget = 0;
  elastic.degrade = DegradePolicy::kShedLowestValue;
  return elastic;
}

struct Diagnosed {
  profile::DoctorReport report;
  std::string text;
  std::string json_text;
  std::size_t units = 0;
};

Diagnosed diagnose_doomed(const ExecutionPlan& plan) {
  obs::reset();
  obs::set_enabled(true);
  sim::Simulation sim;
  cloud::CloudProvider provider(sim, Rng(5), doomed_config());
  Rng noise(3);
  const CampaignReport campaign =
      run_campaign(provider, plan, cloud::pos_profile(), ExecutionOptions{},
                   doomed_options(), noise);
  obs::set_enabled(false);

  Diagnosed out;
  out.units = campaign.execution.outcomes.size();
  const auto index = profile::TraceIndex::from_recorder(obs::trace());
  profile::DoctorOptions options;
  options.deadline_us = obs::to_trace_us(plan.deadline.value());
  out.report = diagnose(index, provider.cost_records(sim.now()), options);
  out.text = out.report.to_text();
  out.json_text = out.report.to_json();
  obs::reset();
  return out;
}

TEST(CampaignDoctorTest, DoomedWorldBlamesAcquisitionAndNamesTheShed) {
  if (!obs::compiled_in()) GTEST_SKIP() << "recording sites compiled out";
  const ExecutionPlan plan = slack_plan(data_40mb());
  const Diagnosed d = diagnose_doomed(plan);

  // The two headline conclusions the doctor must reach.
  EXPECT_EQ(d.report.dominant_phase, "acquisition");
  EXPECT_EQ(d.report.degradation, "shed-lowest-value");

  // Every unit was shed at the first 60 s epoch, and every unit missed.
  ASSERT_GT(d.units, 0u);
  EXPECT_EQ(d.report.shed, d.units);
  EXPECT_EQ(d.report.done, 0u);
  EXPECT_EQ(d.report.misses.size(), d.units);
  ASSERT_EQ(d.report.path.units.size(), d.units);
  for (const profile::UnitProfile& unit : d.report.path.units) {
    EXPECT_EQ(unit.resolution, profile::UnitResolution::kShed);
    EXPECT_EQ(unit.attempts, 0u);
    EXPECT_EQ(unit.blame, profile::Phase::kAcquisition);
    // The whole 60 s life is acquisition wait.
    EXPECT_EQ(unit.resolved_at_us, 60'000'000);
    EXPECT_EQ(unit.total_us(),
              unit.phase_us[static_cast<std::size_t>(
                  profile::Phase::kAcquisition)]);
  }
  for (const profile::MissExplanation& miss : d.report.misses) {
    EXPECT_EQ(miss.blame, profile::Phase::kAcquisition);
    EXPECT_NE(miss.verdict.find("blame acquisition"), std::string::npos)
        << miss.verdict;
  }

  // Failed boots in dead zones are free: nothing was billed.
  EXPECT_DOUBLE_EQ(d.report.cost.total, 0.0);
  EXPECT_EQ(d.report.cost.free_failed_boots,
            d.report.cost.failed_instances);

  // Golden fragments of the rendered report.
  EXPECT_NE(d.text.find("dominant phase: acquisition"), std::string::npos);
  EXPECT_NE(d.text.find("degradation: shed-lowest-value"),
            std::string::npos);
  EXPECT_NE(d.text.find("acquisition        360.000s  100.0%"),
            std::string::npos);
  EXPECT_NE(d.text.find("window: 0.000s .. 60.000s"), std::string::npos);
}

TEST(CampaignDoctorTest, ReportRendersByteIdenticallyAcrossRuns) {
  if (!obs::compiled_in()) GTEST_SKIP() << "recording sites compiled out";
  const ExecutionPlan plan = slack_plan(data_40mb());
  const Diagnosed a = diagnose_doomed(plan);
  const Diagnosed b = diagnose_doomed(plan);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.json_text, b.json_text);
}

TEST(CampaignDoctorTest, JsonReportParsesAndAgreesWithTheStruct) {
  if (!obs::compiled_in()) GTEST_SKIP() << "recording sites compiled out";
  const ExecutionPlan plan = slack_plan(data_40mb());
  const Diagnosed d = diagnose_doomed(plan);

  const json::Value doc = json::parse(d.json_text);
  EXPECT_EQ(doc.at("dominant_phase").string, "acquisition");
  EXPECT_EQ(doc.at("degradation").string, "shed-lowest-value");
  EXPECT_EQ(doc.at("units").at("shed").number,
            static_cast<double>(d.report.shed));
  EXPECT_EQ(doc.at("misses").as_array().size(), d.report.misses.size());
  EXPECT_EQ(doc.at("decisions").as_array().size(),
            d.report.decisions.size());
  // The blame table covers every phase and sums to the swept time.
  const json::Value& phases = doc.at("phases");
  double sum = 0.0;
  for (std::size_t p = 0; p < profile::kPhaseCount; ++p) {
    sum += phases.at(std::string(
        profile::to_string(static_cast<profile::Phase>(p)))).number;
  }
  double struct_sum = 0.0;
  for (const std::int64_t us : d.report.path.phase_us) {
    struct_sum += static_cast<double>(us) / 1e6;
  }
  EXPECT_NEAR(sum, struct_sum, 1e-6);
}

}  // namespace
}  // namespace reshape::provision
