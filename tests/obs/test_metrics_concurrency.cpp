// Contention test for the metrics registry: many ThreadPool workers
// hammer the same counter / gauge / histogram while other tasks take
// snapshots mid-flight.  Run under TSan (label tsan-smoke) this checks
// the lock-free hot path for data races; run plain it checks that no
// increment is ever lost.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <vector>

#include "common/thread_pool.hpp"

namespace reshape::obs {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kTasks = 64;
constexpr std::uint64_t kIncrementsPerTask = 10'000;

TEST(MetricsConcurrencyTest, CountersAreExactUnderContention) {
  MetricsRegistry reg;
  Counter& hot = reg.counter("hot");
  ThreadPool pool(kThreads);
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kIncrementsPerTask; ++i) hot.add(1);
  });
  EXPECT_EQ(hot.value(), kTasks * kIncrementsPerTask);
}

TEST(MetricsConcurrencyTest, GaugeAccumulationLosesNothing) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("acc");
  ThreadPool pool(kThreads);
  pool.parallel_for(kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < 1'000; ++i) g.add(0.5);
  });
  // 0.5 is exactly representable, so CAS accumulation must be exact.
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kTasks) * 1'000 * 0.5);
}

TEST(MetricsConcurrencyTest, HistogramCountsSurviveParallelObserves) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  ThreadPool pool(kThreads);
  pool.parallel_for(kTasks, [&](std::size_t task) {
    // Each task deposits a known amount into a known bucket — one value
    // per bucket of bounds {1,2,4}, including the overflow (4.5 > 4).
    constexpr double kValues[4] = {0.5, 1.5, 2.5, 4.5};
    const double v = kValues[task % 4];
    for (std::uint64_t i = 0; i < kIncrementsPerTask; ++i) h.observe(v);
  });
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, kTasks * kIncrementsPerTask);
  ASSERT_EQ(snap.counts.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(snap.counts[b], (kTasks / 4) * kIncrementsPerTask) << b;
  }
  EXPECT_DOUBLE_EQ(snap.sum,
                   static_cast<double>(kTasks / 4) * kIncrementsPerTask *
                       (0.5 + 1.5 + 2.5 + 4.5));
}

TEST(MetricsConcurrencyTest, SnapshotsRaceWritersSafely) {
  MetricsRegistry reg;
  Counter& c = reg.counter("c");
  Histogram& h = reg.histogram("h", {10.0, 100.0});
  std::atomic<bool> done{false};

  ThreadPool pool(kThreads);
  // Half the pool snapshots continuously while the writers run; every
  // snapshot must be internally coherent enough to parse and export.
  std::vector<std::future<std::size_t>> readers;
  for (std::size_t r = 0; r < kThreads / 2; ++r) {
    readers.push_back(pool.submit([&] {
      std::size_t snaps = 0;
      while (!done.load(std::memory_order_acquire)) {
        const HistogramSnapshot s = h.snapshot();
        EXPECT_EQ(s.counts.size(), 3u);
        (void)reg.to_json();
        ++snaps;
      }
      return snaps;
    }));
  }
  std::vector<std::future<void>> writers;
  for (std::size_t w = 0; w < kThreads / 2; ++w) {
    writers.push_back(pool.submit([&] {
      for (std::uint64_t i = 0; i < kIncrementsPerTask; ++i) {
        c.add(1);
        h.observe(static_cast<double>(i % 200));
        // Late registration while readers iterate the maps.
        if (i % 1'000 == 0) reg.counter("late." + std::to_string(i)).add(1);
      }
    }));
  }
  for (auto& w : writers) w.get();
  done.store(true, std::memory_order_release);
  std::size_t total_snaps = 0;
  for (auto& r : readers) total_snaps += r.get();
  EXPECT_GT(total_snaps, 0u);
  EXPECT_EQ(c.value(), (kThreads / 2) * kIncrementsPerTask);
  EXPECT_EQ(h.snapshot().count, (kThreads / 2) * kIncrementsPerTask);
}

}  // namespace
}  // namespace reshape::obs
