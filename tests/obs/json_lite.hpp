// A minimal recursive-descent JSON parser, just big enough to validate
// the observability layer's exported artifacts (Chrome trace-event files
// and metrics snapshots) without an external JSON dependency.
//
// Supports the full JSON grammar except for \uXXXX escapes beyond the
// basic multilingual plane pass-through (the exporter never emits any).
// Parse failures throw std::runtime_error with a byte offset.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace reshape::testjson {

struct Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::shared_ptr<Array> array;
  std::shared_ptr<Object> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  [[nodiscard]] const Array& as_array() const {
    if (!is_array()) throw std::runtime_error("json: not an array");
    return *array;
  }
  [[nodiscard]] const Object& as_object() const {
    if (!is_object()) throw std::runtime_error("json: not an object");
    return *object;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return is_object() && object->count(key) > 0;
  }
  [[nodiscard]] const Value& at(const std::string& key) const {
    const auto it = as_object().find(key);
    if (it == as_object().end()) {
      throw std::runtime_error("json: missing key " + key);
    }
    return it->second;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  [[nodiscard]] Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.string = string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.kind = Value::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.kind = Value::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return Value{};
    return number();
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u digit");
          }
          // The exporter only escapes control characters, all < 0x80.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += '?';
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    v.array = std::make_shared<Array>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array->push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    v.object = std::make_shared<Object>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      (*v.object)[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

[[nodiscard]] inline Value parse(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace reshape::testjson
