// Trace determinism under zone-sharded parallel execution.
//
// The recorder's append order is whatever cross-thread interleaving the
// host scheduler produced, so insertion-order export is not reproducible
// for a parallel run.  The canonical export orders events by content
// instead — these tests pin that a ZonedSimulation campaign recorded
// from worker threads exports byte-identical canonical JSON whether it
// ran sequentially or in parallel, and across repeated parallel runs.
// TraceIndex builds from a content order too, so the profiler pipeline
// inherits the same guarantee; the suite carries the tsan-smoke label so
// a -DRESHAPE_SANITIZE=thread build sweeps the concurrent record path.
//
// Drives a local TraceRecorder (no global recording sites), so it runs
// under -DRESHAPE_OBS=OFF as well.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "obs/profile/trace_index.hpp"
#include "obs/trace.hpp"
#include "sim/zoned.hpp"

namespace reshape::obs {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Self-feeding per-shard churn that records a span (and every eighth
/// fire an instant) into a shared recorder, stamped in shard sim time.
struct RecordingDriver {
  sim::Simulation& sim;
  TraceRecorder& rec;
  std::uint32_t shard;
  std::uint64_t rng;
  std::uint64_t remaining;
  std::uint64_t fired = 0;

  void spawn() {
    if (remaining == 0) return;
    --remaining;
    const std::uint64_t r = splitmix(rng);
    const double delay = static_cast<double>(r % 10000u) * 1e-3;
    sim.schedule_in(Seconds(delay), [this, r](sim::Simulation& s) {
      const std::uint64_t id = ++fired;
      rec.complete(kPidExecutor, shard, "churn", "attempt",
                   s.now().value(), 1e-3,
                   {arg("unit", std::uint64_t{shard}), arg("seq", id),
                    arg("r", r)});
      if (id % 8 == 0) {
        rec.instant(kPidExecutor, shard, "churn", "tick", s.now().value(),
                    {arg("seq", id)});
      }
      spawn();
    });
  }
};

struct Recorded {
  std::string canonical_json;
  std::size_t events = 0;
};

Recorded run_campaign(std::size_t shards, std::uint64_t per_shard,
                      ThreadPool* pool) {
  TraceRecorder rec;
  sim::ZonedSimulation zoned(shards);
  std::vector<std::unique_ptr<RecordingDriver>> drivers;
  for (std::size_t i = 0; i < shards; ++i) {
    drivers.push_back(std::make_unique<RecordingDriver>(RecordingDriver{
        zoned.shard(i), rec, static_cast<std::uint32_t>(i), 1000 + i,
        per_shard}));
    for (int j = 0; j < 8; ++j) drivers.back()->spawn();
  }
  if (pool != nullptr) {
    zoned.run_parallel(*pool);
  } else {
    zoned.run_sequential();
  }
  return Recorded{rec.to_chrome_json(/*canonical=*/true),
                  rec.event_count()};
}

TEST(TraceParallelTest, CanonicalExportMatchesSequentialByteForByte) {
  ThreadPool pool;
  const Recorded seq = run_campaign(8, 4000, nullptr);
  const Recorded par = run_campaign(8, 4000, &pool);
  ASSERT_GT(seq.events, 0u);
  EXPECT_EQ(seq.events, par.events);
  EXPECT_EQ(seq.canonical_json, par.canonical_json);
}

TEST(TraceParallelTest, RepeatedParallelRunsExportIdentically) {
  ThreadPool pool;
  const Recorded a = run_campaign(8, 4000, &pool);
  const Recorded b = run_campaign(8, 4000, &pool);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.canonical_json, b.canonical_json);
}

TEST(TraceParallelTest, IndexIsIdenticalAcrossInterleavings) {
  // TraceIndex sorts by content, so the profiler sees the same tracks,
  // spans and instants no matter which interleaving recorded them.
  ThreadPool pool;
  const auto index_of = [](ThreadPool* p) {
    TraceRecorder rec;
    sim::ZonedSimulation zoned(4);
    std::vector<std::unique_ptr<RecordingDriver>> drivers;
    for (std::size_t i = 0; i < 4; ++i) {
      drivers.push_back(std::make_unique<RecordingDriver>(RecordingDriver{
          zoned.shard(i), rec, static_cast<std::uint32_t>(i), 7 + i,
          2000}));
      for (int j = 0; j < 8; ++j) drivers.back()->spawn();
    }
    if (p != nullptr) {
      zoned.run_parallel(*p);
    } else {
      zoned.run_sequential();
    }
    return profile::TraceIndex::from_recorder(rec);
  };
  const profile::TraceIndex seq = index_of(nullptr);
  const profile::TraceIndex par = index_of(&pool);
  EXPECT_EQ(seq.span_count(), par.span_count());
  EXPECT_EQ(seq.instant_count(), par.instant_count());
  ASSERT_EQ(seq.tracks().size(), par.tracks().size());
  for (std::size_t t = 0; t < seq.tracks().size(); ++t) {
    const profile::Track& a = seq.tracks()[t];
    const profile::Track& b = par.tracks()[t];
    EXPECT_EQ(a.key, b.key);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
      EXPECT_EQ(a.spans[i].start_us, b.spans[i].start_us);
      EXPECT_EQ(a.spans[i].name, b.spans[i].name);
      EXPECT_EQ(a.spans[i].parent, b.spans[i].parent);
    }
  }
}

TEST(TraceParallelTest, WallTidsAreStablePerThreadAndDistinctAcross) {
  // The wall-clock domain maps each host thread to one small tid: every
  // span a thread records lands on the same track, and concurrent
  // threads never share one.
  TraceRecorder rec;
  rec.set_wall_capture(true);
  const auto record_two = [&rec] {
    const auto t0 = std::chrono::steady_clock::now();
    rec.wall_complete("wall", "a", t0, t0 + std::chrono::microseconds(1));
    rec.wall_complete("wall", "b", t0 + std::chrono::microseconds(2),
                      t0 + std::chrono::microseconds(3));
  };
  record_two();  // main thread
  std::thread t1(record_two);
  std::thread t2(record_two);
  t1.join();
  t2.join();
  rec.set_wall_capture(false);

  std::map<std::uint32_t, std::size_t> spans_per_tid;
  for (const TraceEvent& e : rec.snapshot()) {
    ASSERT_EQ(e.ph, 'X');
    ASSERT_EQ(e.pid, kPidWall);
    ++spans_per_tid[e.tid];
  }
  // Three threads, two spans each, tids assigned densely from 1.
  ASSERT_EQ(spans_per_tid.size(), 3u);
  for (const auto& [tid, count] : spans_per_tid) {
    EXPECT_GE(tid, 1u);
    EXPECT_LE(tid, 3u);
    EXPECT_EQ(count, 2u) << "tid " << tid;
  }
}

}  // namespace
}  // namespace reshape::obs
