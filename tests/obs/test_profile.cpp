// Unit tests for the trace analysis pipeline: TraceIndex ingestion
// (grouping, ordering, nesting, queries, arg decoding), the
// critical-path extractor's phase attribution, and cost attribution —
// all on hand-built recorders, so they stay meaningful in a
// -DRESHAPE_OBS=OFF build (the TraceRecorder type always exists; only
// the global recording sites compile out).

#include "obs/profile/trace_index.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/profile/cost.hpp"
#include "obs/profile/critical_path.hpp"
#include "obs/recorder.hpp"
#include "obs/trace.hpp"

namespace reshape::obs::profile {
namespace {

TEST(ArgDecodersTest, DecodeRenderedLiterals) {
  TraceRecorder rec;
  rec.complete(kPidExecutor, 0, "c", "n", 0.0, 1.0,
               {arg("str", "a\"b\\c\nd"), arg("int", std::int64_t{-42}),
                arg("real", 2.5), arg("flag", true), arg("off", false),
                arg("count", std::uint64_t{7})});
  const TraceIndex index = TraceIndex::from_recorder(rec);
  const Track* track = index.track(kPidExecutor, 0);
  ASSERT_NE(track, nullptr);
  ASSERT_EQ(track->spans.size(), 1u);
  const auto& args = track->spans[0].args;

  // Strings decode back through the JSON escaping applied at record time.
  EXPECT_EQ(arg_string(args, "str"), "a\"b\\c\nd");
  EXPECT_EQ(arg_number(args, "int"), -42.0);
  EXPECT_EQ(arg_number(args, "real"), 2.5);
  EXPECT_EQ(arg_number(args, "count"), 7.0);
  EXPECT_EQ(arg_bool(args, "flag"), true);
  EXPECT_EQ(arg_bool(args, "off"), false);
  // Missing keys and type mismatches are nullopt, not defaults.
  EXPECT_FALSE(arg_string(args, "absent").has_value());
  EXPECT_FALSE(arg_number(args, "str").has_value());
  EXPECT_FALSE(arg_bool(args, "int").has_value());
}

TEST(TraceIndexTest, GroupsTracksAndAppliesThreadNames) {
  TraceRecorder rec;
  rec.thread_name(kPidExecutor, 2, "unit-2");
  rec.complete(kPidExecutor, 2, "executor", "exec", 1.0, 2.0);
  rec.complete(kPidCloud, 9, "instance", "boot", 0.0, 1.0);
  rec.instant(kPidExecutor, 2, "controller", "crash", 3.5);
  rec.instant(kPidExecutor, 0, "controller", "epoch", 5.0);

  const TraceIndex index = TraceIndex::from_recorder(rec);
  EXPECT_EQ(index.span_count(), 2u);
  EXPECT_EQ(index.instant_count(), 2u);
  // Tracks come out in ascending (pid, tid) order.
  ASSERT_EQ(index.tracks().size(), 3u);
  EXPECT_EQ(index.tracks()[0].key, (TrackKey{kPidCloud, 9}));
  EXPECT_EQ(index.tracks()[1].key, (TrackKey{kPidExecutor, 0}));
  EXPECT_EQ(index.tracks()[2].key, (TrackKey{kPidExecutor, 2}));
  EXPECT_EQ(index.tracks()[2].name, "unit-2");
  EXPECT_EQ(index.tids(kPidExecutor),
            (std::vector<std::uint32_t>{0u, 2u}));
  EXPECT_EQ(index.track(kPidExecutor, 7), nullptr);
  // Extent spans earliest event to latest end (instant at 5.0s).
  EXPECT_EQ(index.begin_us(), 0);
  EXPECT_EQ(index.end_us(), 5'000'000);
}

TEST(TraceIndexTest, OrderIndependentOfArrivalInterleaving) {
  TraceRecorder a, b;
  a.complete(kPidExecutor, 0, "c", "first", 0.0, 1.0);
  a.complete(kPidExecutor, 0, "c", "second", 2.0, 1.0);
  b.complete(kPidExecutor, 0, "c", "second", 2.0, 1.0);
  b.complete(kPidExecutor, 0, "c", "first", 0.0, 1.0);
  const TraceIndex ia = TraceIndex::from_recorder(a);
  const TraceIndex ib = TraceIndex::from_recorder(b);
  ASSERT_EQ(ia.track(kPidExecutor, 0)->spans.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(ia.track(kPidExecutor, 0)->spans[i].name,
              ib.track(kPidExecutor, 0)->spans[i].name);
  }
  EXPECT_EQ(ia.track(kPidExecutor, 0)->spans[0].name, "first");
}

TEST(TraceIndexTest, InfersParentNesting) {
  TraceRecorder rec;
  // outer [0,100], mid [10,50], inner [20,30], sibling [60,90],
  // root2 [200,300].
  rec.complete(kPidExecutor, 1, "c", "outer", 0.0, 100.0);
  rec.complete(kPidExecutor, 1, "c", "mid", 10.0, 40.0);
  rec.complete(kPidExecutor, 1, "c", "inner", 20.0, 10.0);
  rec.complete(kPidExecutor, 1, "c", "sibling", 60.0, 30.0);
  rec.complete(kPidExecutor, 1, "c", "root2", 200.0, 100.0);
  const TraceIndex index = TraceIndex::from_recorder(rec);
  const Track* track = index.track(kPidExecutor, 1);
  ASSERT_NE(track, nullptr);
  ASSERT_EQ(track->spans.size(), 5u);
  // Spans are start-sorted: outer, mid, inner, sibling, root2.
  EXPECT_EQ(track->spans[0].name, "outer");
  EXPECT_EQ(track->spans[0].parent, -1);
  EXPECT_EQ(track->spans[0].depth, 0u);
  EXPECT_EQ(track->spans[1].name, "mid");
  EXPECT_EQ(track->spans[1].parent, 0);
  EXPECT_EQ(track->spans[1].depth, 1u);
  EXPECT_EQ(track->spans[2].name, "inner");
  EXPECT_EQ(track->spans[2].parent, 1);
  EXPECT_EQ(track->spans[2].depth, 2u);
  // sibling nests under outer, not under the closed mid.
  EXPECT_EQ(track->spans[3].name, "sibling");
  EXPECT_EQ(track->spans[3].parent, 0);
  EXPECT_EQ(track->spans[3].depth, 1u);
  EXPECT_EQ(track->spans[4].name, "root2");
  EXPECT_EQ(track->spans[4].parent, -1);
  EXPECT_EQ(track->spans[4].depth, 0u);
}

TEST(TraceIndexTest, QueryFiltersAndWindowSemantics) {
  TraceRecorder rec;
  rec.complete(kPidExecutor, 0, "executor", "exec", 10.0, 10.0);  // [10,20]
  rec.complete(kPidExecutor, 1, "controller", "attempt", 15.0, 10.0);
  rec.instant(kPidExecutor, 0, "controller", "crash", 20.0);
  rec.instant(kPidCloud, 0, "instance", "failed", 20.0);
  const TraceIndex index = TraceIndex::from_recorder(rec);

  EventQuery q;
  q.pid = kPidExecutor;
  EXPECT_EQ(index.query_spans(q).size(), 2u);
  q.cat = "controller";
  ASSERT_EQ(index.query_spans(q).size(), 1u);
  EXPECT_EQ(index.query_spans(q)[0]->name, "attempt");
  EXPECT_EQ(index.query_instants(q).size(), 1u);

  // Spans match by overlap with [from, to): a span ending exactly at
  // `from` is out, one starting at `to` is out, any overlap is in.
  EventQuery window;
  window.from_us = 20'000'000;
  window.to_us = 25'000'000;
  ASSERT_EQ(index.query_spans(window).size(), 1u);
  EXPECT_EQ(index.query_spans(window)[0]->name, "attempt");
  window.from_us = 0;
  window.to_us = 10'000'000;  // exec starts exactly at to: excluded
  EXPECT_EQ(index.query_spans(window).size(), 0u);

  // Instants match by containment in [from, to).
  EventQuery iq;
  iq.from_us = 20'000'000;
  iq.to_us = 20'000'001;
  EXPECT_EQ(index.query_instants(iq).size(), 2u);
  iq.to_us = 20'000'000;
  EXPECT_EQ(index.query_instants(iq).size(), 0u);
}

// -- critical path ---------------------------------------------------------

TEST(CriticalPathTest, AttributesAcquisitionStagingExec) {
  TraceRecorder rec;
  // Unit 0: boots wait until t=100, then one attempt 100..200 with a
  // 30 s staging prefix; resolved done at 200.
  rec.complete(kPidExecutor, 0, "controller", "attempt", 100.0, 100.0,
               {arg("unit", std::uint64_t{0}), arg("staging_s", 30.0),
                arg("exec_s", 70.0)});
  rec.instant(kPidExecutor, 0, "controller", "unit-done", 200.0,
              {arg("unit", std::uint64_t{0})});
  const TraceIndex index = TraceIndex::from_recorder(rec);
  CriticalPathOptions options;
  options.begin_us = 0;
  const CriticalPathReport report = extract_critical_path(index, options);
  ASSERT_EQ(report.units.size(), 1u);
  const UnitProfile& unit = report.units[0];
  EXPECT_EQ(unit.resolution, UnitResolution::kDone);
  EXPECT_EQ(unit.resolved_at_us, 200'000'000);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kAcquisition)],
            100'000'000);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kStaging)],
            30'000'000);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kExec)],
            70'000'000);
  // The buckets partition [begin, resolved_at).
  EXPECT_EQ(unit.total_us(), 200'000'000);
  EXPECT_EQ(unit.blame, Phase::kAcquisition);
  EXPECT_EQ(report.dominant, Phase::kAcquisition);
  EXPECT_EQ(report.end_us, 200'000'000);
}

TEST(CriticalPathTest, GapBetweenAttemptsIsRecovery) {
  TraceRecorder rec;
  // Crash at 150, redispatch at 180, done at 280.
  rec.complete(kPidExecutor, 3, "controller", "attempt#crashed", 100.0, 50.0,
               {arg("unit", std::uint64_t{3}), arg("staging_s", 0.0),
                arg("exec_s", 50.0)});
  rec.complete(kPidExecutor, 3, "controller", "attempt", 180.0, 100.0,
               {arg("unit", std::uint64_t{3}), arg("staging_s", 0.0),
                arg("exec_s", 100.0)});
  rec.instant(kPidExecutor, 3, "controller", "unit-done", 280.0);
  const TraceIndex index = TraceIndex::from_recorder(rec);
  CriticalPathOptions options;
  options.begin_us = 0;
  const CriticalPathReport report = extract_critical_path(index, options);
  ASSERT_EQ(report.units.size(), 1u);
  const UnitProfile& unit = report.units[0];
  EXPECT_EQ(unit.attempts, 2u);
  EXPECT_EQ(unit.crashes, 1u);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kAcquisition)],
            100'000'000);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kRecovery)],
            30'000'000);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kExec)],
            150'000'000);
  EXPECT_EQ(unit.blame, Phase::kExec);
}

TEST(CriticalPathTest, HedgeRaceCountsDuplicateCoverOnce) {
  TraceRecorder rec;
  // Primary attempt 100..200 wins; hedge 120..160 loses.  The overlap
  // [120,160) is owned once (by the earlier-starting primary) and the
  // extra cover lands in hedge_duplicate_us, not the phase buckets.
  rec.complete(kPidExecutor, 1, "controller", "attempt", 100.0, 100.0,
               {arg("unit", std::uint64_t{1}), arg("staging_s", 0.0),
                arg("exec_s", 100.0)});
  rec.complete(kPidExecutor, 1, "controller", "attempt#hedge-lost", 120.0,
               40.0,
               {arg("unit", std::uint64_t{1}), arg("staging_s", 0.0),
                arg("exec_s", 40.0), arg("hedge", true)});
  rec.instant(kPidExecutor, 1, "controller", "unit-done", 200.0);
  const TraceIndex index = TraceIndex::from_recorder(rec);
  CriticalPathOptions options;
  options.begin_us = 100'000'000;
  const CriticalPathReport report = extract_critical_path(index, options);
  ASSERT_EQ(report.units.size(), 1u);
  const UnitProfile& unit = report.units[0];
  EXPECT_EQ(unit.hedges, 1u);
  EXPECT_EQ(unit.hedge_losses, 1u);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kExec)],
            100'000'000);
  EXPECT_EQ(unit.hedge_duplicate_us, 40'000'000);
  EXPECT_EQ(unit.total_us(), 100'000'000);
}

TEST(CriticalPathTest, ShedWithoutAttemptsIsAllAcquisition) {
  TraceRecorder rec;
  rec.instant(kPidExecutor, 0, "controller", "unit-shed", 60.0,
              {arg("unit", std::uint64_t{0})});
  const TraceIndex index = TraceIndex::from_recorder(rec);
  CriticalPathOptions options;
  options.begin_us = 0;
  const CriticalPathReport report = extract_critical_path(index, options);
  ASSERT_EQ(report.units.size(), 1u);
  EXPECT_EQ(report.units[0].resolution, UnitResolution::kShed);
  EXPECT_EQ(report.units[0].attempts, 0u);
  EXPECT_EQ(
      report.units[0].phase_us[static_cast<std::size_t>(Phase::kAcquisition)],
      60'000'000);
  EXPECT_EQ(report.units[0].total_us(), 60'000'000);
  EXPECT_EQ(report.dominant, Phase::kAcquisition);
}

TEST(CriticalPathTest, TailAfterLastAttemptOfAbandonedUnitIsStranded) {
  TraceRecorder rec;
  rec.complete(kPidExecutor, 2, "controller", "attempt#crashed", 10.0, 10.0,
               {arg("unit", std::uint64_t{2}), arg("staging_s", 0.0),
                arg("exec_s", 10.0)});
  rec.instant(kPidExecutor, 2, "controller", "unit-abandoned", 100.0);
  const TraceIndex index = TraceIndex::from_recorder(rec);
  CriticalPathOptions options;
  options.begin_us = 0;
  const CriticalPathReport report = extract_critical_path(index, options);
  ASSERT_EQ(report.units.size(), 1u);
  const UnitProfile& unit = report.units[0];
  EXPECT_EQ(unit.resolution, UnitResolution::kAbandoned);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kAcquisition)],
            10'000'000);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kExec)],
            10'000'000);
  EXPECT_EQ(unit.phase_us[static_cast<std::size_t>(Phase::kStranded)],
            80'000'000);
  EXPECT_EQ(unit.blame, Phase::kStranded);
}

TEST(CriticalPathTest, CampaignLevelInstantTrackIsNotAUnit) {
  TraceRecorder rec;
  // tid 0 carries only campaign-level instants (epoch, degrade): no unit
  // work, no resolution — it must not be swept as a unit.
  rec.instant(kPidExecutor, 0, "controller", "epoch", 300.0);
  rec.instant(kPidExecutor, 0, "controller", "degrade", 300.0,
              {arg("policy", "shed-lowest-value")});
  rec.complete(kPidExecutor, 1, "controller", "attempt", 0.0, 10.0,
               {arg("unit", std::uint64_t{1}), arg("staging_s", 0.0),
                arg("exec_s", 10.0)});
  rec.instant(kPidExecutor, 1, "controller", "unit-done", 10.0);
  const TraceIndex index = TraceIndex::from_recorder(rec);
  const CriticalPathReport report = extract_critical_path(index);
  ASSERT_EQ(report.units.size(), 1u);
  EXPECT_EQ(report.units[0].unit, 1u);
}

// -- cost attribution ------------------------------------------------------

TEST(CostAttributionTest, BucketsSumToInstanceBills) {
  TraceRecorder rec;
  // Instance 1: 1800 s of a 3600 s bill covered by a winning attempt.
  rec.complete(kPidExecutor, 0, "controller", "attempt", 0.0, 1800.0,
               {arg("unit", std::uint64_t{0}),
                arg("instance", std::uint64_t{1})});
  // Instance 2 (failed): 900 s of 1800 s covered by a crashed attempt.
  rec.complete(kPidExecutor, 1, "controller", "attempt#crashed", 0.0, 900.0,
               {arg("unit", std::uint64_t{1}),
                arg("instance", std::uint64_t{2})});
  // Instance 4: a cancelled hedge loser.
  rec.complete(kPidExecutor, 0, "controller", "attempt#hedge-lost", 0.0,
               600.0,
               {arg("unit", std::uint64_t{0}),
                arg("instance", std::uint64_t{4})});
  const TraceIndex index = TraceIndex::from_recorder(rec);

  const std::vector<InstanceCostRecord> records = {
      {1, 1.00, 3600.0, false},
      {2, 0.50, 1800.0, true},
      {3, 0.00, 0.0, true},  // boot that never reached running
      {4, 0.30, 600.0, false},
  };
  const CostAttribution cost = attribute_costs(index, records);
  EXPECT_DOUBLE_EQ(cost.total, 1.80);
  EXPECT_DOUBLE_EQ(cost.productive, 0.50);
  EXPECT_DOUBLE_EQ(cost.crashed, 0.25);
  EXPECT_DOUBLE_EQ(cost.hedge_lost, 0.30);
  EXPECT_DOUBLE_EQ(cost.idle, 0.75);
  EXPECT_DOUBLE_EQ(cost.idle_failed, 0.25);
  EXPECT_DOUBLE_EQ(
      cost.productive + cost.crashed + cost.hedge_lost + cost.idle,
      cost.total);
  EXPECT_EQ(cost.failed_instances, 2u);
  EXPECT_EQ(cost.free_failed_boots, 1u);

  ASSERT_EQ(cost.units.size(), 2u);
  EXPECT_EQ(cost.units[0].unit, 0u);
  EXPECT_DOUBLE_EQ(cost.units[0].productive, 0.50);
  EXPECT_DOUBLE_EQ(cost.units[0].hedge_lost, 0.30);
  EXPECT_DOUBLE_EQ(cost.units[0].dollars, 0.80);
  EXPECT_EQ(cost.units[1].unit, 1u);
  EXPECT_DOUBLE_EQ(cost.units[1].crashed, 0.25);

  ASSERT_EQ(cost.instances.size(), 4u);
  for (const InstanceCost& inst : cost.instances) {
    EXPECT_DOUBLE_EQ(
        inst.productive + inst.hedge_lost + inst.crashed + inst.idle,
        inst.dollars)
        << "instance " << inst.instance;
  }
}

TEST(CostAttributionTest, AttemptOnUnknownInstanceIsIgnored) {
  TraceRecorder rec;
  rec.complete(kPidExecutor, 0, "controller", "attempt", 0.0, 100.0,
               {arg("unit", std::uint64_t{0}),
                arg("instance", std::uint64_t{99})});
  const TraceIndex index = TraceIndex::from_recorder(rec);
  const CostAttribution cost = attribute_costs(index, {});
  EXPECT_DOUBLE_EQ(cost.total, 0.0);
  EXPECT_DOUBLE_EQ(cost.productive, 0.0);
  EXPECT_TRUE(cost.units.empty());
  EXPECT_TRUE(cost.instances.empty());
}

}  // namespace
}  // namespace reshape::obs::profile
