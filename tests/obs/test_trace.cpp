#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "json_lite.hpp"
#include "obs/recorder.hpp"

namespace reshape::obs {
namespace {

namespace json = reshape::testjson;

TEST(TraceTime, SimSecondsBecomeIntegerMicroseconds) {
  EXPECT_EQ(to_trace_us(0.0), 0);
  EXPECT_EQ(to_trace_us(1.0), 1'000'000);
  EXPECT_EQ(to_trace_us(0.5), 500'000);
  EXPECT_EQ(to_trace_us(3600.0), 3'600'000'000LL);
  // Sub-microsecond durations round to the nearest tick, not truncate.
  EXPECT_EQ(to_trace_us(0.0000006), 1);
  EXPECT_EQ(to_trace_us(0.0000004), 0);
}

TEST(TraceRecorderTest, RecordsEventsInInsertionOrder) {
  TraceRecorder rec;
  rec.complete(kPidCloud, 1, "instance", "boot", 0.0, 2.0);
  rec.instant(kPidCloud, 1, "instance", "failed", 2.0);
  rec.complete(kPidExecutor, 0, "executor", "exec", 1.0, 5.0);
  EXPECT_EQ(rec.event_count(), 3u);

  const json::Value doc = json::parse(rec.to_chrome_json());
  const json::Array& events = doc.at("traceEvents").as_array();
  // 4 metadata process_name events precede the recorded ones.
  ASSERT_EQ(events.size(), 7u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].at("ph").string, "M");
    EXPECT_EQ(events[i].at("name").string, "process_name");
  }
  EXPECT_EQ(events[4].at("name").string, "boot");
  EXPECT_EQ(events[4].at("ph").string, "X");
  EXPECT_EQ(events[4].at("ts").number, 0.0);
  EXPECT_EQ(events[4].at("dur").number, 2'000'000.0);
  EXPECT_EQ(events[5].at("name").string, "failed");
  EXPECT_EQ(events[5].at("ph").string, "i");
  EXPECT_EQ(events[5].at("s").string, "t");  // thread-scoped instant
  EXPECT_EQ(events[6].at("pid").number, static_cast<double>(kPidExecutor));
}

TEST(TraceRecorderTest, ArgsSurviveJsonRoundTrip) {
  TraceRecorder rec;
  rec.complete(kPidCloud, 7, "t", "quote\"back\\slash\nnewline", 0.0, 1.0,
               {arg("str", "a\tb"), arg("int", std::int64_t{-42}),
                arg("big", std::uint64_t{1} << 63), arg("real", 2.5),
                arg("flag", true)});
  const json::Value doc = json::parse(rec.to_chrome_json());
  const json::Value& e = doc.at("traceEvents").as_array().back();
  EXPECT_EQ(e.at("name").string, "quote\"back\\slash\nnewline");
  const json::Value& args = e.at("args");
  EXPECT_EQ(args.at("str").string, "a\tb");
  EXPECT_EQ(args.at("int").number, -42.0);
  EXPECT_EQ(args.at("real").number, 2.5);
  EXPECT_TRUE(args.at("flag").boolean);
  // 2^63 is representable exactly as a double.
  EXPECT_EQ(args.at("big").number, 9223372036854775808.0);
}

TEST(TraceRecorderTest, SameEventSequenceExportsIdenticalBytes) {
  const auto record = [](TraceRecorder& rec) {
    rec.thread_name(kPidCloud, 3, "instance-3");
    rec.complete(kPidCloud, 3, "instance", "boot", 0.125, 41.5,
                 {arg("instance", std::uint64_t{3})});
    rec.instant(kPidExecutor, 0, "executor", "crash", 99.875,
                {arg("kind", "crash")});
  };
  TraceRecorder a, b;
  record(a);
  record(b);
  EXPECT_EQ(a.to_chrome_json(), b.to_chrome_json());
}

TEST(TraceRecorderTest, ClearEmptiesTheBuffer) {
  TraceRecorder rec;
  rec.complete(kPidCloud, 1, "c", "n", 0.0, 1.0);
  ASSERT_EQ(rec.event_count(), 1u);
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
  // Still exports a valid (empty) document.
  const json::Value doc = json::parse(rec.to_chrome_json());
  EXPECT_EQ(doc.at("traceEvents").as_array().size(), 4u);  // metadata only
}

TEST(TraceRecorderTest, WallSpanIsInertWithoutWallCapture) {
  if (!compiled_in()) GTEST_SKIP() << "recording sites compiled out";
  set_enabled(true);
  trace().clear();
  trace().set_wall_capture(false);
  { const WallSpan span("test", "inert"); }
  EXPECT_EQ(trace().event_count(), 0u);
  trace().set_wall_capture(true);
  { const WallSpan span("test", "live"); }
  trace().set_wall_capture(false);
  set_enabled(false);
  EXPECT_EQ(trace().event_count(), 1u);
  const json::Value doc = json::parse(trace().to_chrome_json());
  const json::Value& e = doc.at("traceEvents").as_array().back();
  EXPECT_EQ(e.at("name").string, "live");
  EXPECT_EQ(e.at("pid").number, static_cast<double>(kPidWall));
  trace().clear();
}

TEST(TraceRecorderTest, ChromeSchemaSanity) {
  TraceRecorder rec;
  rec.complete(kPidCloud, 2, "instance", "running", 1.0, 2.0);
  rec.instant(kPidMapReduce, 5, "mapreduce", "done", 3.0);
  const std::string out = rec.to_chrome_json();
  const json::Value doc = json::parse(out);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  for (const json::Value& e : doc.at("traceEvents").as_array()) {
    ASSERT_TRUE(e.is_object());
    const std::string& ph = e.at("ph").string;
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "M");
    EXPECT_TRUE(e.at("pid").is_number());
    EXPECT_TRUE(e.at("tid").is_number());
    EXPECT_TRUE(e.at("name").is_string());
    if (ph == "X") {
      // Timestamps are integral microseconds — the determinism contract.
      const double ts = e.at("ts").number;
      const double dur = e.at("dur").number;
      EXPECT_EQ(ts, static_cast<double>(static_cast<long long>(ts)));
      EXPECT_EQ(dur, static_cast<double>(static_cast<long long>(dur)));
      EXPECT_GE(dur, 0.0);
      EXPECT_TRUE(e.at("cat").is_string());
    }
    if (ph == "i") {
      EXPECT_EQ(e.at("s").string, "t");
    }
  }
}

}  // namespace
}  // namespace reshape::obs
