// Tests for weighted least squares (§7's proposed model improvement).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "model/regression.hpp"

namespace reshape::model {
namespace {

TEST(WeightedFit, UniformWeightsMatchOls) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{2.1, 3.9, 6.2, 7.8};
  const std::vector<double> w{1.0, 1.0, 1.0, 1.0};
  const AffineFit plain = fit_affine(xs, ys);
  const AffineFit weighted = fit_affine_weighted(xs, ys, w);
  EXPECT_NEAR(plain.slope, weighted.slope, 1e-12);
  EXPECT_NEAR(plain.intercept, weighted.intercept, 1e-12);
}

TEST(WeightedFit, DownweightsNoisySmallVolumes) {
  // Clean signal at large x, garbage at small x (the Fig. 3 situation):
  // volume weighting must recover the true slope where OLS is pulled off.
  std::vector<double> xs, ys;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {  // noisy small probes
    const double x = rng.uniform(1e4, 1e5);
    xs.push_back(x);
    ys.push_back(0.5 + 1e-6 * x + rng.normal(0.0, 0.5));
  }
  for (double x = 1e8; x <= 1e9; x += 2e8) {  // clean large probes
    xs.push_back(x);
    ys.push_back(0.5 + 1e-6 * x);
  }
  const AffineFit weighted =
      fit_affine_weighted(xs, ys, volume_weights(xs));
  EXPECT_NEAR(weighted.slope, 1e-6, 2e-9);
  const AffineFit plain = fit_affine(xs, ys);
  EXPECT_LE(std::abs(weighted.slope - 1e-6), std::abs(plain.slope - 1e-6));
}

TEST(WeightedFit, ZeroWeightPointsAreIgnored) {
  const std::vector<double> xs{1.0, 2.0, 100.0};
  const std::vector<double> ys{5.0, 7.0, -999.0};  // outlier
  const std::vector<double> w{1.0, 1.0, 0.0};
  const AffineFit fit = fit_affine_weighted(xs, ys, w);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
}

TEST(WeightedFit, InvalidInputsThrow) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 2.0};
  const std::vector<double> short_w{1.0};
  const std::vector<double> neg_w{1.0, -1.0};
  const std::vector<double> zero_w{0.0, 0.0};
  EXPECT_THROW((void)fit_affine_weighted(xs, ys, short_w), Error);
  EXPECT_THROW((void)fit_affine_weighted(xs, ys, neg_w), Error);
  EXPECT_THROW((void)fit_affine_weighted(xs, ys, zero_w), Error);
}

TEST(VolumeWeights, ProportionalAndNormalized) {
  const std::vector<double> xs{1.0, 3.0};
  const std::vector<double> w = volume_weights(xs);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_NEAR(w[0] + w[1], 2.0, 1e-12);  // mean 1
  EXPECT_NEAR(w[1] / w[0], 3.0, 1e-12);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_THROW((void)volume_weights(zeros), Error);
}

}  // namespace
}  // namespace reshape::model
