#include "model/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace reshape::model {
namespace {

/// Predictor equal to the paper's Eq. (3): f(x) = 0.327 + 0.865e-4 x.
Predictor eq3_predictor() {
  std::vector<double> xs, ys;
  for (double v = 1e4; v <= 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(0.327 + 0.865e-4 * v);
  }
  return Predictor::fit(xs, ys);
}

TEST(Predictor, PredictMatchesEquationThree) {
  const Predictor p = eq3_predictor();
  // A 1 MB run is ~86.8 s, the scale of Fig. 7.
  EXPECT_NEAR(p.predict(1_MB).value(), 86.83, 0.2);
  EXPECT_GT(p.r2(), 0.9999);
}

TEST(Predictor, MaxVolumeWithinSolvesInverse) {
  const Predictor p = eq3_predictor();
  // Solving Eq. (3) for D = 3600 gives x0 ~ 41.6 MB (the §5.2 step that
  // prescribes 27 instances for ~1.09 GB).
  const Bytes x0 = p.max_volume_within(Seconds(3600.0));
  EXPECT_NEAR(x0.as_double(), (3600.0 - 0.327) / 0.865e-4, 1e4);
  // ceil(1.09 GB / x0) = 27 instances, as the paper reports.
  const double v = 1.09e9;
  EXPECT_EQ(std::ceil(v / x0.as_double()), 27.0);
}

TEST(Predictor, ImpossibleDeadlineYieldsZeroVolume) {
  const Predictor p = eq3_predictor();
  EXPECT_EQ(p.max_volume_within(Seconds(0.1)).count(), 0u);
}

TEST(RelativeResiduals, ZeroForPerfectFit) {
  const Predictor p = eq3_predictor();
  std::vector<double> xs, ys;
  for (double v = 1e5; v < 1e6; v += 2e5) {
    xs.push_back(v);
    ys.push_back(p.affine().predict(v));
  }
  const RelativeResiduals r = relative_residuals(p, xs, ys);
  EXPECT_NEAR(r.mean, 0.0, 1e-12);
  EXPECT_NEAR(r.stddev, 0.0, 1e-12);
  EXPECT_EQ(r.count, xs.size());
}

TEST(RelativeResiduals, CapturesSystematicUnderestimate) {
  const Predictor p = eq3_predictor();
  std::vector<double> xs, ys;
  for (double v = 1e5; v < 1e6; v += 1e5) {
    xs.push_back(v);
    ys.push_back(p.affine().predict(v) * 1.3);  // 30% slower than modelled
  }
  const RelativeResiduals r = relative_residuals(p, xs, ys);
  EXPECT_NEAR(r.mean, 0.3, 1e-9);
}

TEST(UpperTailZ, MatchesStandardQuantiles) {
  // The paper: P(Z > z) <= 0.1 gives z = 1.29 (1.2816 exactly).
  EXPECT_NEAR(upper_tail_z(0.10), 1.2816, 2e-3);
  EXPECT_NEAR(upper_tail_z(0.05), 1.6449, 2e-3);
  EXPECT_NEAR(upper_tail_z(0.5), 0.0, 1e-9);
  EXPECT_NEAR(upper_tail_z(0.01), 2.3263, 2e-3);
  EXPECT_THROW((void)upper_tail_z(0.0), Error);
  EXPECT_THROW((void)upper_tail_z(1.0), Error);
}

TEST(AdjustmentFactor, MatchesPaperFormula) {
  // §5.2: a = 1.29 sigma + mu; their residuals gave a = 1.525.
  RelativeResiduals r;
  r.mean = 0.0;
  r.stddev = 1.525 / 1.2816;
  EXPECT_NEAR(adjustment_factor(r, 0.10), 1.525, 5e-3);
}

TEST(AdjustedDeadline, MatchesPaperNumbers) {
  // D = 3600 -> D1 = 3600 / (1 + 1.525) ~= 1425?  No: the paper reports
  // 3124 for D=3600, implying a ~= 0.152 for that fit — but its printed
  // a = 1.525 and D1 = 3124 are mutually inconsistent; 3600/(1+0.1525) =
  // 3123.6 matches D1, so we treat a = 0.1525 as the operative value.
  RelativeResiduals r;
  r.mean = 0.0;
  r.stddev = 0.1525 / 1.2816;
  EXPECT_NEAR(adjusted_deadline(Seconds(3600.0), r, 0.10).value(), 3123.6,
              2.0);
  EXPECT_NEAR(adjusted_deadline(Seconds(7200.0), r, 0.10).value(), 6247.2,
              4.0);
}

TEST(AdjustedDeadline, DegenerateAdjustmentThrows) {
  RelativeResiduals r;
  r.mean = -2.0;  // would flip the deadline sign
  r.stddev = 0.0;
  EXPECT_THROW((void)adjusted_deadline(Seconds(3600.0), r, 0.10), Error);
}

// --- ThroughputBank (the elastic controller's observed-rate refit) ---------

TEST(ThroughputBank, KeepsThePriorBelowMinimumEvidence) {
  const Predictor prior = eq3_predictor();
  ThroughputBank bank;
  bank.observe(1_MB, Seconds(90.0));
  bank.observe(2_MB, Seconds(180.0));
  EXPECT_EQ(bank.count(), 2u);
  const Predictor fitted = bank.fitted(prior, 3);
  EXPECT_DOUBLE_EQ(fitted.affine().slope, prior.affine().slope);
  EXPECT_DOUBLE_EQ(fitted.affine().intercept, prior.affine().intercept);
}

TEST(ThroughputBank, IgnoresDegenerateObservations) {
  ThroughputBank bank;
  bank.observe(Bytes(0), Seconds(10.0));
  bank.observe(1_MB, Seconds(0.0));
  bank.observe(1_MB, Seconds(-5.0));
  EXPECT_EQ(bank.count(), 0u);
  EXPECT_DOUBLE_EQ(bank.mean_throughput().bytes_per_second(), 0.0);
}

TEST(ThroughputBank, MeanThroughputPoolsBytesOverSeconds) {
  ThroughputBank bank;
  bank.observe(Bytes(10'000'000), Seconds(10.0));
  bank.observe(Bytes(30'000'000), Seconds(10.0));
  // 40 MB over 20 s = 2 MB/s, pooled — not the mean of per-attempt rates.
  EXPECT_DOUBLE_EQ(bank.mean_throughput().bytes_per_second(), 2.0e6);
}

TEST(ThroughputBank, RefitsTheAffineModelFromSpreadObservations) {
  const Predictor prior = eq3_predictor();
  ThroughputBank bank;
  // A world twice as slow as the prior: t = 10 + 2e-4 * v.
  for (double v = 1e5; v <= 1e6; v += 1e5) {
    bank.observe(Bytes(static_cast<std::uint64_t>(v)),
                 Seconds(10.0 + 2.0e-4 * v));
  }
  const Predictor fitted = bank.fitted(prior, 3);
  EXPECT_NEAR(fitted.affine().slope, 2.0e-4, 1e-8);
  EXPECT_NEAR(fitted.affine().intercept, 10.0, 1e-6);
  // The refit steers capacity planning: half the volume fits the hour.
  EXPECT_NEAR(fitted.max_volume_within(Seconds(3600.0)).as_double(),
              (3600.0 - 10.0) / 2.0e-4, 1e3);
}

TEST(ThroughputBank, NoVolumeSpreadKeepsPriorInterceptAndPoolsTheRate) {
  const Predictor prior(AffineFit{20.0, 1.0e-4, {}});
  ThroughputBank bank;
  // Same-size attempts (the uniform-plan common case): OLS would be
  // degenerate, so only the per-byte rate is re-derived.
  for (int i = 0; i < 4; ++i) {
    bank.observe(Bytes(1'000'000), Seconds(20.0 + 300.0));  // 3e-4 s/byte
  }
  const Predictor fitted = bank.fitted(prior, 3);
  EXPECT_DOUBLE_EQ(fitted.affine().intercept, 20.0);
  EXPECT_NEAR(fitted.affine().slope, 3.0e-4, 1e-10);
}

}  // namespace
}  // namespace reshape::model
