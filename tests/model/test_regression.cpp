#include "model/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace reshape::model {
namespace {

std::vector<double> logspace(double lo, double hi, std::size_t n) {
  std::vector<double> xs;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    xs.push_back(lo * std::pow(hi / lo, t));
  }
  return xs;
}

TEST(AffineFit, RecoversExactCoefficients) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(-0.974 + 1.324 * x);
  const AffineFit fit = fit_affine(xs, ys);
  EXPECT_NEAR(fit.intercept, -0.974, 1e-9);
  EXPECT_NEAR(fit.slope, 1.324, 1e-9);
  EXPECT_NEAR(fit.quality.r2, 1.0, 1e-12);
}

TEST(AffineFit, PaperEquationOneScale) {
  // Eq. (1): f(x) = -0.974 + 1.324e-8 x over byte-scale volumes.
  std::vector<double> xs, ys;
  Rng rng(1);
  for (double v = 1e8; v <= 5e9; v *= 1.5) {
    xs.push_back(v);
    ys.push_back(-0.974 + 1.324e-8 * v + rng.normal(0.0, 0.2));
  }
  const AffineFit fit = fit_affine(xs, ys);
  EXPECT_NEAR(fit.slope, 1.324e-8, 2e-10);
  EXPECT_GT(fit.quality.r2, 0.999);
  // Prediction for 100 GB is ~1323 s, the paper's Fig. 6 scale.
  EXPECT_NEAR(fit.predict(1e11), 1323.0, 25.0);
}

TEST(AffineFit, InverseRoundTrips) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 5.0, 7.0};
  const AffineFit fit = fit_affine(xs, ys);
  EXPECT_NEAR(fit.inverse(fit.predict(2.5)), 2.5, 1e-9);
}

TEST(AffineFit, FlatModelHasNoInverse) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{4.0, 4.0, 4.0};
  const AffineFit fit = fit_affine(xs, ys);
  EXPECT_THROW((void)fit.inverse(4.0), Error);
}

TEST(AffineFit, ResidualsAreOriginalSpace) {
  const std::vector<double> xs{1.0, 2.0};
  const std::vector<double> ys{1.0, 3.0};
  const AffineFit fit = fit_affine(xs, ys);
  ASSERT_EQ(fit.quality.residuals.size(), 2u);
  EXPECT_NEAR(fit.quality.residuals[0], 0.0, 1e-12);
}

TEST(AffineFit, StrRendersEquation) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{3.0, 5.0, 7.0};
  const std::string s = fit_affine(xs, ys).str();
  EXPECT_NE(s.find("f(x) ="), std::string::npos);
  EXPECT_NE(s.find("R^2"), std::string::npos);
}

TEST(LinearFit, RecoversProportionalConstant) {
  const std::vector<double> xs = logspace(1e3, 1e9, 12);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(2.5e-7 * x);
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.a, 2.5e-7, 1e-12);
  EXPECT_NEAR(fit.quality.r2, 1.0, 1e-9);
}

TEST(PowerFit, RecoversExponent) {
  const std::vector<double> xs = logspace(10.0, 1e6, 15);
  std::vector<double> ys;
  for (const double x : xs) ys.push_back(3.0 * std::pow(x, 0.7));
  const PowerFit fit = fit_power(xs, ys);
  EXPECT_NEAR(fit.a, 3.0, 1e-6);
  EXPECT_NEAR(fit.b, 0.7, 1e-9);
  EXPECT_NEAR(fit.quality.r2, 1.0, 1e-9);
}

TEST(PowerFit, LogSpaceWeightingHandlesWideRanges) {
  // Non-equidistant points spanning six decades — the reason the paper
  // regresses in log space.
  const std::vector<double> xs = logspace(1.0, 1e6, 20);
  std::vector<double> ys;
  Rng rng(2);
  for (const double x : xs) {
    ys.push_back(2.0 * std::pow(x, 1.1) *
                 std::exp(rng.normal(0.0, 0.01)));
  }
  const PowerFit fit = fit_power(xs, ys);
  EXPECT_NEAR(fit.b, 1.1, 0.02);
}

TEST(PowerLogFit, RecoversCurvedLogModel) {
  // y = x^{a ln x + b} with a=0.02, b=0.9.
  const std::vector<double> xs = logspace(2.0, 1e4, 15);
  std::vector<double> ys;
  for (const double x : xs) {
    const double lx = std::log(x);
    ys.push_back(std::exp(0.02 * lx * lx + 0.9 * lx));
  }
  const PowerLogFit fit = fit_powerlog(xs, ys);
  EXPECT_NEAR(fit.a, 0.02, 1e-9);
  EXPECT_NEAR(fit.b, 0.9, 1e-9);
}

TEST(ExponentialFit, RecoversRate) {
  std::vector<double> xs, ys;
  for (double x = 0.0; x <= 10.0; x += 1.0) {
    xs.push_back(x);
    ys.push_back(1.5 * std::exp(0.3 * x));
  }
  const ExponentialFit fit = fit_exponential(xs, ys);
  EXPECT_NEAR(fit.a, 1.5, 1e-9);
  EXPECT_NEAR(fit.b, 0.3, 1e-12);
}

TEST(ModelSelection, PicksTheGeneratingFamily) {
  const std::vector<double> xs = logspace(10.0, 1e5, 15);
  std::vector<double> linear_ys, power_ys, exp_ys;
  for (const double x : xs) {
    linear_ys.push_back(4e-3 * x);
    power_ys.push_back(0.5 * std::pow(x, 1.6));
  }
  std::vector<double> exp_xs;
  for (double x = 0.0; x < 15.0; x += 1.0) {
    exp_xs.push_back(x);
    exp_ys.push_back(2.0 * std::exp(0.5 * x));
  }
  EXPECT_EQ(select_model(xs, linear_ys).family, ModelFamily::kLinear);
  EXPECT_EQ(select_model(xs, power_ys).family, ModelFamily::kPower);
  EXPECT_EQ(select_model(exp_xs, exp_ys).family, ModelFamily::kExponential);
}

TEST(ModelFamilyNames, Render) {
  EXPECT_EQ(to_string(ModelFamily::kPower), "power");
  EXPECT_EQ(to_string(ModelFamily::kPowerLog), "power-log");
}

TEST(Fits, InputValidation) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW((void)fit_affine(one, one), Error);
  EXPECT_THROW((void)fit_affine(two, one), Error);
  const std::vector<double> with_zero{0.0, 1.0};
  EXPECT_THROW((void)fit_power(with_zero, two), Error);
  const std::vector<double> same_x{2.0, 2.0};
  EXPECT_THROW((void)fit_affine(same_x, two), Error);
}

}  // namespace
}  // namespace reshape::model
