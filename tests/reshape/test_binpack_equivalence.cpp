// The contract of the O(log b) packers: bit-for-bit identical bin
// assignments to the naive reference scans, across 1k seeded corpora with
// varied sizes, oversize items and both item orders.

#include "reshape/binpack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "corpus/distribution.hpp"

namespace reshape::pack {
namespace {

void expect_identical(const PackResult& got, const PackResult& want,
                      const char* algo, std::uint64_t seed) {
  ASSERT_EQ(got.bin_count(), want.bin_count())
      << algo << " bin count diverged, seed " << seed;
  for (std::size_t b = 0; b < got.bins.size(); ++b) {
    ASSERT_EQ(got.bins[b].capacity, want.bins[b].capacity)
        << algo << " bin " << b << " capacity, seed " << seed;
    ASSERT_EQ(got.bins[b].used, want.bins[b].used)
        << algo << " bin " << b << " used, seed " << seed;
    ASSERT_EQ(got.bins[b].item_ids, want.bins[b].item_ids)
        << algo << " bin " << b << " contents, seed " << seed;
  }
}

/// A small corpus with the long-tail size distribution, plus injected
/// oversize items (several times the largest capacity under test) and
/// occasional zero-size files.
std::vector<Item> fuzz_items(Rng& rng) {
  const corpus::FileSizeDistribution dist = corpus::text_400k_sizes();
  const std::size_t n =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 299));
  std::vector<Item> items;
  items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes size = dist.sample(rng);
    const double roll = rng.uniform();
    if (roll < 0.05) {
      size = size * 64 + 2_MB;  // guaranteed oversize for every capacity
    } else if (roll < 0.08) {
      size = Bytes(0);
    }
    items.push_back(Item{i, size});
  }
  return items;
}

Bytes fuzz_capacity(Rng& rng) {
  constexpr std::uint64_t kChoices[] = {1'000, 8'000, 64'000, 256'000,
                                        1'000'000};
  return Bytes(kChoices[rng.uniform_below(std::size(kChoices))]);
}

TEST(PackEquivalence, TreeFirstFitMatchesReferenceAcross1kCorpora) {
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    Rng rng(seed);
    const std::vector<Item> items = fuzz_items(rng);
    const Bytes cap = fuzz_capacity(rng);
    for (const ItemOrder order :
         {ItemOrder::kOriginal, ItemOrder::kDecreasing}) {
      expect_identical(first_fit(items, cap, order),
                       first_fit_reference(items, cap, order), "first_fit",
                       seed);
    }
  }
}

TEST(PackEquivalence, MultisetBestFitMatchesReferenceAcross1kCorpora) {
  for (std::uint64_t seed = 1000; seed < 2000; ++seed) {
    Rng rng(seed);
    const std::vector<Item> items = fuzz_items(rng);
    const Bytes cap = fuzz_capacity(rng);
    for (const ItemOrder order :
         {ItemOrder::kOriginal, ItemOrder::kDecreasing}) {
      expect_identical(best_fit(items, cap, order),
                       best_fit_reference(items, cap, order), "best_fit",
                       seed);
    }
  }
}

// pack_into_k and uniform_bins moved from linear min-scans to a tournament
// tree + lazy min-heap; pin them to inline transcriptions of the original
// loops.

std::vector<Bin> naive_pack_into_k(std::span<const Item> items, std::size_t k,
                                   Bytes capacity) {
  std::vector<Bin> bins(k);
  for (Bin& b : bins) b.capacity = capacity;
  for (const Item& item : items) {
    Bin* target = nullptr;
    for (Bin& bin : bins) {
      if (bin.fits(item.size)) {
        target = &bin;
        break;
      }
    }
    if (target == nullptr) {
      target = &*std::min_element(
          bins.begin(), bins.end(),
          [](const Bin& a, const Bin& b) { return a.used < b.used; });
    }
    target->used += item.size;
    target->item_ids.push_back(item.id);
  }
  return bins;
}

std::vector<Bin> naive_uniform_bins(std::span<const Item> items,
                                    std::size_t k) {
  std::vector<Bin> bins(k);
  Bytes total{0};
  for (const Item& item : items) total += item.size;
  for (Bin& b : bins) b.capacity = total;
  for (const Item& item : items) {
    Bin& target = *std::min_element(
        bins.begin(), bins.end(),
        [](const Bin& a, const Bin& b) { return a.used < b.used; });
    target.used += item.size;
    target.item_ids.push_back(item.id);
  }
  return bins;
}

TEST(PackEquivalence, FixedBinPackersMatchNaiveScans) {
  for (std::uint64_t seed = 2000; seed < 2200; ++seed) {
    Rng rng(seed);
    const std::vector<Item> items = fuzz_items(rng);
    const Bytes cap = fuzz_capacity(rng);
    const std::size_t k =
        1 + static_cast<std::size_t>(rng.uniform_int(0, 15));
    const PackResult got_k{pack_into_k(items, k, cap)};
    const PackResult want_k{naive_pack_into_k(items, k, cap)};
    expect_identical(got_k, want_k, "pack_into_k", seed);
    const PackResult got_u{uniform_bins(items, k)};
    const PackResult want_u{naive_uniform_bins(items, k)};
    expect_identical(got_u, want_u, "uniform_bins", seed);
  }
}

}  // namespace
}  // namespace reshape::pack
