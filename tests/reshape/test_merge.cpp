#include "reshape/merge.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/distribution.hpp"

namespace reshape::pack {
namespace {

corpus::Corpus sample_corpus(std::size_t n = 2000, std::uint64_t seed = 1) {
  Rng rng(seed);
  return corpus::Corpus::generate(corpus::text_400k_sizes(), n, rng);
}

TEST(MergeToUnit, EveryFileInExactlyOneBlock) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus merged = merge_to_unit(c, 1_MB);
  std::set<std::uint64_t> seen;
  for (const Bin& block : merged.blocks) {
    for (const std::uint64_t id : block.item_ids) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), c.file_count());
  EXPECT_EQ(merged.total_volume(), c.total_volume());
}

TEST(MergeToUnit, BlocksRespectUnit) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus merged = merge_to_unit(c, 1_MB);
  EXPECT_LE(merged.largest_block(), 1_MB);
  EXPECT_GT(merged.fill_factor(), 0.8);  // first-fit packs densely here
  EXPECT_LT(merged.block_count(), c.file_count());
}

TEST(MergeToUnit, ReducesFileCountDramatically) {
  // The headline mechanism: 2000 small files -> a handful of unit blocks.
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus merged = merge_to_unit(c, 1_MB);
  EXPECT_LT(merged.block_count() * 100, c.file_count());
}

TEST(MergeToUnitParallel, EveryFileInExactlyOneBlock) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus merged =
      merge_to_unit_parallel(c, 1_MB, ItemOrder::kOriginal, 4);
  std::set<std::uint64_t> seen;
  for (const Bin& block : merged.blocks) {
    for (const std::uint64_t id : block.item_ids) {
      EXPECT_TRUE(seen.insert(id).second);
    }
    EXPECT_LE(block.used, block.capacity);
  }
  EXPECT_EQ(seen.size(), c.file_count());
  EXPECT_EQ(merged.total_volume(), c.total_volume());
}

TEST(MergeToUnitParallel, DeterministicForFixedShardCount) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus a =
      merge_to_unit_parallel(c, 500_kB, ItemOrder::kOriginal, 4);
  const MergedCorpus b =
      merge_to_unit_parallel(c, 500_kB, ItemOrder::kOriginal, 4);
  ASSERT_EQ(a.block_count(), b.block_count());
  for (std::size_t i = 0; i < a.blocks.size(); ++i) {
    EXPECT_EQ(a.blocks[i].item_ids, b.blocks[i].item_ids);
  }
}

TEST(MergeToUnitParallel, OneShardIsExactlySequential) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus seq = merge_to_unit(c, 1_MB);
  const MergedCorpus par =
      merge_to_unit_parallel(c, 1_MB, ItemOrder::kOriginal, 1);
  ASSERT_EQ(par.block_count(), seq.block_count());
  for (std::size_t i = 0; i < seq.blocks.size(); ++i) {
    EXPECT_EQ(par.blocks[i].item_ids, seq.blocks[i].item_ids);
  }
}

TEST(MergeToUnitParallel, FillFactorNearSequential) {
  // The documented approximation: only each shard's tail bins go
  // underfilled, so the fill factor drop stays small on a corpus much
  // larger than shards * unit.
  const corpus::Corpus c = sample_corpus(4000, 3);
  const MergedCorpus seq = merge_to_unit(c, 1_MB);
  const MergedCorpus par =
      merge_to_unit_parallel(c, 1_MB, ItemOrder::kOriginal, 4);
  EXPECT_GE(par.block_count(), seq.block_count());
  EXPECT_LT(seq.fill_factor() - par.fill_factor(), 0.15);
}

TEST(MergeToUnitParallel, InvalidUnitThrows) {
  const corpus::Corpus c = sample_corpus(50);
  EXPECT_THROW((void)merge_to_unit_parallel(c, Bytes(0)), Error);
}

TEST(DeriveMultiple, ConcatenatesConsecutiveBlocks) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus base = merge_to_unit(c, 500_kB);
  const MergedCorpus doubled = derive_multiple(base, 2);
  EXPECT_EQ(doubled.unit, 1_MB);
  EXPECT_EQ(doubled.block_count(), (base.block_count() + 1) / 2);
  EXPECT_EQ(doubled.total_volume(), base.total_volume());
  // m == 1 is the identity.
  const MergedCorpus same = derive_multiple(base, 1);
  EXPECT_EQ(same.block_count(), base.block_count());
  EXPECT_THROW((void)derive_multiple(base, 0), Error);
}

TEST(DeriveMultiple, PreservesItemPartition) {
  const corpus::Corpus c = sample_corpus(500, 7);
  const MergedCorpus base = merge_to_unit(c, 200_kB);
  const MergedCorpus m4 = derive_multiple(base, 4);
  std::set<std::uint64_t> seen;
  for (const Bin& block : m4.blocks) {
    for (const std::uint64_t id : block.item_ids) {
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(seen.size(), c.file_count());
}

TEST(Materialize, ConcatenatesRealBytes) {
  std::vector<corpus::VirtualFile> files;
  std::vector<std::string> texts{"aaa", "bb", "cccc", "d"};
  for (std::uint64_t i = 0; i < texts.size(); ++i) {
    files.push_back(corpus::VirtualFile{i, Bytes(texts[i].size()), 1.0});
  }
  const corpus::Corpus c{std::move(files)};
  const MergedCorpus merged = merge_to_unit(c, Bytes(5));
  const std::vector<std::string> blocks = materialize(merged, texts);
  ASSERT_EQ(blocks.size(), merged.block_count());
  std::size_t total = 0;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    EXPECT_EQ(blocks[b].size(), merged.blocks[b].used.count());
    total += blocks[b].size();
  }
  EXPECT_EQ(total, 10u);  // all bytes survive the merge
}

TEST(Materialize, BadIdThrows) {
  MergedCorpus merged;
  merged.unit = Bytes(10);
  Bin bad;
  bad.item_ids.push_back(99);
  merged.blocks.push_back(bad);
  EXPECT_THROW((void)materialize(merged, {"only-one"}), Error);
}

TEST(MergedCorpus, EmptyAccessors) {
  const MergedCorpus empty;
  EXPECT_EQ(empty.block_count(), 0u);
  EXPECT_EQ(empty.total_volume(), 0_B);
  EXPECT_DOUBLE_EQ(empty.fill_factor(), 0.0);
}

TEST(BlockDigests, EveryMergeStampsOnePerBlock) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus merged = merge_to_unit(c, 1_MB);
  ASSERT_EQ(merged.digests.size(), merged.block_count());
  for (std::size_t b = 0; b < merged.block_count(); ++b) {
    EXPECT_EQ(merged.digests[b], block_digest(merged.blocks[b]));
    EXPECT_NE(merged.digests[b], 0u);
  }
}

TEST(BlockDigests, SequentialAndOneShardParallelAgree) {
  // One shard produces the identical partition, so the digests must be
  // bit-identical too: the digest is a function of the logical block, not
  // of the code path that built it.
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus seq = merge_to_unit(c, 1_MB);
  const MergedCorpus par =
      merge_to_unit_parallel(c, 1_MB, ItemOrder::kOriginal, 1);
  ASSERT_EQ(seq.digests.size(), par.digests.size());
  EXPECT_EQ(seq.digests, par.digests);
}

TEST(BlockDigests, DerivedBlocksGetFreshDigests) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus base = merge_to_unit(c, 500_kB);
  const MergedCorpus doubled = derive_multiple(base, 2);
  ASSERT_EQ(doubled.digests.size(), doubled.block_count());
  for (std::size_t b = 0; b < doubled.block_count(); ++b) {
    EXPECT_EQ(doubled.digests[b], block_digest(doubled.blocks[b]));
  }
}

TEST(BlockDigests, DistinctBlocksDisagree) {
  const corpus::Corpus c = sample_corpus();
  const MergedCorpus merged = merge_to_unit(c, 1_MB);
  ASSERT_GE(merged.block_count(), 2u);
  std::set<std::uint64_t> unique(merged.digests.begin(),
                                 merged.digests.end());
  // FNV-1a over distinct id sets: collisions across a few hundred blocks
  // would indicate a broken update loop, not bad luck.
  EXPECT_EQ(unique.size(), merged.digests.size());
}

TEST(ContentDigests, CatchAFlippedByte) {
  std::vector<corpus::VirtualFile> files;
  std::vector<std::string> texts{"aaa", "bb", "cccc", "d"};
  for (std::uint64_t i = 0; i < texts.size(); ++i) {
    files.push_back(corpus::VirtualFile{i, Bytes(texts[i].size()), 1.0});
  }
  const corpus::Corpus c{std::move(files)};
  const MergedCorpus merged = merge_to_unit(c, Bytes(5));
  std::vector<std::string> blocks = materialize(merged, texts);
  const std::vector<std::uint64_t> expected = content_digests(blocks);
  EXPECT_TRUE(verify_blocks(blocks, expected).empty());

  blocks[1][0] ^= 0x01;  // one silently corrupted bit
  const std::vector<std::size_t> bad = verify_blocks(blocks, expected);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], 1u);
}

TEST(ContentDigests, CountMismatchThrows) {
  const std::vector<std::string> blocks{"x", "y"};
  const std::vector<std::uint64_t> expected = content_digests({"x"});
  EXPECT_THROW((void)verify_blocks(blocks, expected), Error);
}

}  // namespace
}  // namespace reshape::pack
