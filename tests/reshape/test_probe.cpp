#include "reshape/probe.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/distribution.hpp"

namespace reshape::pack {
namespace {

corpus::Corpus big_corpus(std::uint64_t seed = 1) {
  Rng rng(seed);
  return corpus::Corpus::generate(corpus::text_400k_sizes(), 20'000, rng);
}

TEST(ProbeSet, ContainsOriginalAndUnitProbes) {
  const corpus::Corpus c = big_corpus();
  const std::vector<std::uint64_t> multiples{2, 4, 8};
  const ProbeSet set = build_probe_set(c, 2_MB, 1_MB, multiples);
  // orig + s0 + three multiples.
  EXPECT_EQ(set.probes.size(), 5u);
  EXPECT_TRUE(set.probes.front().original);
  EXPECT_EQ(set.original().label, "orig");
  EXPECT_EQ(set.probes[1].unit, 1_MB);
  EXPECT_EQ(set.probes[2].unit, 2_MB);
  EXPECT_EQ(set.probes[4].unit, 8_MB);
}

TEST(ProbeSet, AllProbesShareTheVolume) {
  const corpus::Corpus c = big_corpus();
  const std::vector<std::uint64_t> multiples{2};
  const ProbeSet set = build_probe_set(c, 5_MB, 1_MB, multiples);
  for (const ProbeSpec& p : set.probes) {
    EXPECT_EQ(p.volume, set.volume);
  }
  EXPECT_GE(set.volume, 5_MB);
}

TEST(ProbeSet, FileCountsDecreaseWithUnitSize) {
  const corpus::Corpus c = big_corpus();
  const std::vector<std::uint64_t> multiples{2, 4};
  const ProbeSet set = build_probe_set(c, 4_MB, 1_MB, multiples);
  const ProbeSpec& orig = set.probes[0];
  for (std::size_t i = 1; i < set.probes.size(); ++i) {
    EXPECT_LT(set.probes[i].file_count, orig.file_count);
    if (i > 1) {
      EXPECT_LE(set.probes[i].file_count, set.probes[i - 1].file_count);
    }
  }
}

TEST(ProbeSet, S0MustExceedLargestFile) {
  const corpus::Corpus c = big_corpus();
  const std::vector<std::uint64_t> multiples{2};
  // 1 kB is below the largest file in any realistic draw.
  EXPECT_THROW((void)build_probe_set(c, 2_MB, 1_kB, multiples), Error);
}

TEST(ProbeSet, MultipleOfOneRejected) {
  const corpus::Corpus c = big_corpus();
  const std::vector<std::uint64_t> multiples{1};
  EXPECT_THROW((void)build_probe_set(c, 2_MB, 1_MB, multiples), Error);
}

TEST(ProbeSet, NoOriginalProbeThrows) {
  const ProbeSet empty;
  EXPECT_THROW((void)empty.original(), Error);
}

TEST(RandomProbeSet, SamplesDifferentSubsets) {
  const corpus::Corpus c = big_corpus();
  const std::vector<std::uint64_t> multiples{2};
  Rng rng(5);
  const ProbeSet a = build_random_probe_set(c, 2_MB, 1_MB, multiples, rng);
  const ProbeSet b = build_random_probe_set(c, 2_MB, 1_MB, multiples, rng);
  EXPECT_TRUE(a.probes[0].file_count != b.probes[0].file_count ||
              a.volume != b.volume)
      << "two random samples were identical";
}

TEST(RandomProbeSet, VolumeNearTarget) {
  const corpus::Corpus c = big_corpus();
  const std::vector<std::uint64_t> multiples{2};
  Rng rng(6);
  const ProbeSet set = build_random_probe_set(c, 5_MB, 1_MB, multiples, rng);
  EXPECT_GE(set.volume, 5_MB);
  EXPECT_LE(set.volume, 5_MB + c.max_file_size());
}

}  // namespace
}  // namespace reshape::pack
