#include "reshape/binpack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "corpus/distribution.hpp"

namespace reshape::pack {
namespace {

std::vector<Item> items_of(std::initializer_list<std::uint64_t> sizes) {
  std::vector<Item> items;
  std::uint64_t id = 0;
  for (const std::uint64_t s : sizes) items.push_back(Item{id++, Bytes(s)});
  return items;
}

std::vector<Item> random_items(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const corpus::FileSizeDistribution dist = corpus::text_400k_sizes();
  std::vector<Item> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(Item{i, dist.sample(rng)});
  }
  return items;
}

/// Every input item appears in exactly one bin.
void expect_partition(std::span<const Item> items,
                      const std::vector<Bin>& bins) {
  std::multiset<std::uint64_t> placed;
  Bytes packed{0};
  for (const Bin& b : bins) {
    Bytes used{0};
    for (const std::uint64_t id : b.item_ids) {
      placed.insert(id);
      used += items[id].size;  // ids are positional in these tests
    }
    EXPECT_EQ(used, b.used) << "bin bookkeeping disagrees with contents";
    packed += used;
  }
  EXPECT_EQ(placed.size(), items.size());
  std::set<std::uint64_t> unique(placed.begin(), placed.end());
  EXPECT_EQ(unique.size(), items.size()) << "an item was placed twice";
  Bytes total{0};
  for (const Item& i : items) total += i.size;
  EXPECT_EQ(packed, total);
}

TEST(FirstFit, PlacesInFirstBinWithRoom) {
  const auto items = items_of({60, 50, 40, 30, 20});
  const PackResult r = first_fit(items, Bytes(100));
  // 60 -> bin0; 50 -> bin1 (110 > 100); 40 -> bin0 (exactly 100);
  // 30 -> bin1 (80); 20 -> bin1 (100).
  ASSERT_EQ(r.bin_count(), 2u);
  EXPECT_EQ(r.bins[0].used, Bytes(100));
  EXPECT_EQ(r.bins[1].used, Bytes(100));
  expect_partition(items, r.bins);
}

TEST(FirstFit, DecreasingOrderPacksTighter) {
  const auto items = random_items(2000, 1);
  const PackResult original = first_fit(items, 64_kB, ItemOrder::kOriginal);
  const PackResult decreasing =
      first_fit(items, 64_kB, ItemOrder::kDecreasing);
  expect_partition(items, original.bins);
  expect_partition(items, decreasing.bins);
  EXPECT_LE(decreasing.bin_count(), original.bin_count());
}

TEST(FirstFit, RespectsCapacityExceptOversize) {
  const auto items = random_items(3000, 2);
  const Bytes cap = 32_kB;
  const PackResult r = first_fit(items, cap);
  for (const Bin& b : r.bins) {
    if (b.item_ids.size() > 1) {
      EXPECT_LE(b.used, cap);
    }
  }
}

TEST(FirstFit, OversizeItemGetsOwnBin) {
  const auto items = items_of({10, 500, 10});
  const PackResult r = first_fit(items, Bytes(100));
  bool found_oversize = false;
  for (const Bin& b : r.bins) {
    if (b.used == Bytes(500)) {
      EXPECT_EQ(b.item_ids.size(), 1u);
      found_oversize = true;
    }
  }
  EXPECT_TRUE(found_oversize);
  expect_partition(items, r.bins);
}

TEST(FirstFit, NeverWorseThanTwiceOptimal) {
  // Classic guarantee: FF uses < 2 * OPT + 1 bins; OPT >= ceil(V/C).
  for (const std::uint64_t seed : {3u, 4u, 5u}) {
    const auto items = random_items(1500, seed);
    const PackResult r = first_fit(items, 64_kB);
    const std::size_t lb = bin_lower_bound(items, 64_kB);
    EXPECT_LT(r.bin_count(), 2 * lb + 2) << "seed " << seed;
  }
}

TEST(BestFit, PartitionAndCapacity) {
  const auto items = random_items(2000, 6);
  const PackResult r = best_fit(items, 64_kB);
  expect_partition(items, r.bins);
  for (const Bin& b : r.bins) {
    if (b.item_ids.size() > 1) {
      EXPECT_LE(b.used, 64_kB);
    }
  }
}

TEST(BestFit, ChoosesTightestBin) {
  // Bins after 70, 50: [70], [50].  Item 30 fits both; best-fit puts it
  // in the fuller bin ([70] -> free 30) not the first with room.
  const auto items = items_of({70, 50, 30});
  const PackResult r = best_fit(items, Bytes(100));
  ASSERT_EQ(r.bin_count(), 2u);
  EXPECT_EQ(r.bins[0].used, Bytes(100));
  EXPECT_EQ(r.bins[1].used, Bytes(50));
}

TEST(NextFit, OnlyLastBinConsidered) {
  const auto items = items_of({60, 60, 30});
  const PackResult r = next_fit(items, Bytes(100));
  // 60 | 60+30: next-fit cannot go back to bin 0.
  ASSERT_EQ(r.bin_count(), 2u);
  EXPECT_EQ(r.bins[1].used, Bytes(90));
}

TEST(NextFit, UsesAtLeastAsManyBinsAsFirstFit) {
  for (const std::uint64_t seed : {7u, 8u}) {
    const auto items = random_items(1500, seed);
    EXPECT_GE(next_fit(items, 64_kB).bin_count(),
              first_fit(items, 64_kB).bin_count());
  }
}

TEST(PackIntoK, ExactlyKBinsCoveringAllItems) {
  const auto items = random_items(500, 9);
  const auto bins = pack_into_k(items, 7, 10_MB);
  EXPECT_EQ(bins.size(), 7u);
  expect_partition(items, bins);
}

TEST(PackIntoK, SpillsToLeastLoadedWhenFull) {
  // Capacity far below total: everything spills, ending near-balanced.
  const auto items = random_items(1000, 10);
  const auto bins = pack_into_k(items, 4, 1_kB);
  expect_partition(items, bins);
  Bytes lo = bins[0].used, hi = bins[0].used;
  for (const Bin& b : bins) {
    lo = std::min(lo, b.used);
    hi = std::max(hi, b.used);
  }
  EXPECT_LT(hi.as_double() / std::max(1.0, lo.as_double()), 1.6);
}

TEST(UniformBins, BalancesVolume) {
  const auto items = random_items(5000, 11);
  const auto bins = uniform_bins(items, 9);
  expect_partition(items, bins);
  Bytes total{0};
  for (const Item& i : items) total += i.size;
  const double ideal = total.as_double() / 9.0;
  for (const Bin& b : bins) {
    EXPECT_NEAR(b.used.as_double(), ideal, ideal * 0.05);
  }
}

TEST(UniformBins, MaxBinBelowFirstFitMaxBin) {
  // The Fig. 8(a)->8(b) improvement: balancing lowers the largest share.
  const auto items = random_items(3000, 12);
  const auto ff = pack_into_k(items, 5, 40_MB);
  const auto uni = uniform_bins(items, 5);
  auto max_used = [](const std::vector<Bin>& bins) {
    Bytes m{0};
    for (const Bin& b : bins) m = std::max(m, b.used);
    return m;
  };
  EXPECT_LE(max_used(uni), max_used(ff));
}

TEST(PackResult, Accessors) {
  const auto items = items_of({40, 40, 40});
  const PackResult r = first_fit(items, Bytes(100));
  EXPECT_EQ(r.total_packed(), Bytes(120));
  EXPECT_EQ(r.item_count(), 3u);
  EXPECT_GT(r.mean_utilization(), 0.0);
  EXPECT_LE(r.mean_utilization(), 1.0);
}

TEST(BinPack, InvalidArgumentsThrow) {
  const auto items = items_of({1});
  EXPECT_THROW((void)first_fit(items, Bytes(0)), Error);
  EXPECT_THROW((void)best_fit(items, Bytes(0)), Error);
  EXPECT_THROW((void)next_fit(items, Bytes(0)), Error);
  EXPECT_THROW((void)pack_into_k(items, 0, Bytes(10)), Error);
  EXPECT_THROW((void)uniform_bins(items, 0), Error);
  EXPECT_THROW((void)bin_lower_bound(items, Bytes(0)), Error);
}

TEST(BinPack, EmptyInputYieldsNoBins) {
  const std::vector<Item> none;
  EXPECT_EQ(first_fit(none, Bytes(10)).bin_count(), 0u);
  EXPECT_EQ(bin_lower_bound(none, Bytes(10)), 0u);
}

// Property sweep: partition + capacity invariants across algorithms,
// capacities and seeds.
struct PackCase {
  std::uint64_t seed;
  std::uint64_t capacity;
};

class PackProperty : public ::testing::TestWithParam<PackCase> {};

TEST_P(PackProperty, AllAlgorithmsPartitionInput) {
  const auto [seed, capacity] = GetParam();
  const auto items = random_items(800, seed);
  const Bytes cap(capacity);
  const bool no_oversize = std::all_of(
      items.begin(), items.end(),
      [cap](const Item& i) { return i.size <= cap; });
  for (const PackResult& r :
       {first_fit(items, cap), best_fit(items, cap), next_fit(items, cap),
        first_fit(items, cap, ItemOrder::kDecreasing),
        best_fit(items, cap, ItemOrder::kDecreasing),
        first_fit_reference(items, cap), best_fit_reference(items, cap)}) {
    expect_partition(items, r.bins);
    if (no_oversize) {
      // With oversize items the ceil(V/C) bound does not apply: a
      // dedicated oversize bin can carry more than C.
      EXPECT_GE(r.bin_count(), bin_lower_bound(items, cap));
    }
    for (const Bin& b : r.bins) {
      EXPECT_FALSE(b.item_ids.empty());
      if (b.item_ids.size() > 1) {
        EXPECT_LE(b.used, cap);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PackProperty,
    ::testing::Values(PackCase{21, 8'000}, PackCase{22, 16'000},
                      PackCase{23, 64'000}, PackCase{24, 256'000},
                      PackCase{25, 1'000'000}, PackCase{26, 5'000'000}));

}  // namespace
}  // namespace reshape::pack
